package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// approx delegates to the shared helper so every package compares floats
// the same way.
var approx = testutil.Within

func TestGaussianLogProbMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewGaussianPolicy(3, 2, []int{8}, 0.7, rng)
	s := tensor.Vector{0.1, -0.4, 0.9}
	a := tensor.Vector{0.3, -0.2}
	mu := p.Mean(s).Clone()
	want := 0.0
	for i := range a {
		sigma := math.Exp(p.LogStd[i])
		z := (a[i] - mu[i]) / sigma
		want += -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
	}
	if got := p.LogProb(s, a); !approx(got, want, 1e-12) {
		t.Fatalf("LogProb = %v want %v", got, want)
	}
}

func TestGaussianSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewGaussianPolicy(2, 1, []int{4}, 0.5, rng)
	s := tensor.Vector{0.5, -0.5}
	mu := p.Mean(s).Clone()
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		a, logp := p.Sample(s, rng)
		if math.IsNaN(logp) || math.IsInf(logp, 0) {
			t.Fatal("non-finite logp")
		}
		sum += a[0]
		sq += a[0] * a[0]
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if !approx(mean, mu[0], 0.02) {
		t.Fatalf("sample mean %v vs μ %v", mean, mu[0])
	}
	if !approx(std, 0.5, 0.02) {
		t.Fatalf("sample std %v vs σ 0.5", std)
	}
}

func TestGaussianEntropyFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewGaussianPolicy(2, 3, []int{4}, 1.0, rng)
	want := 3 * (math.Log(1.0) + 0.5*math.Log(2*math.Pi*math.E))
	if got := p.Entropy(); !approx(got, want, 1e-9) {
		t.Fatalf("Entropy = %v want %v", got, want)
	}
	// Entropy grows with σ.
	p.LogStd.Fill(math.Log(2))
	if p.Entropy() <= want {
		t.Fatal("entropy should increase with σ")
	}
}

func TestBackwardLogProbGradientLogStd(t *testing.T) {
	// Finite-difference check of ∂logπ/∂logσ.
	rng := rand.New(rand.NewSource(4))
	p := NewGaussianPolicy(2, 2, []int{6}, 0.8, rng)
	s := tensor.Vector{0.2, -0.7}
	a := tensor.Vector{0.5, -0.1}
	p.ZeroGrad()
	p.BackwardLogProb(s, a, 1)
	h := 1e-6
	for j := range p.LogStd {
		orig := p.LogStd[j]
		p.LogStd[j] = orig + h
		lp := p.LogProb(s, a)
		p.LogStd[j] = orig - h
		lm := p.LogProb(s, a)
		p.LogStd[j] = orig
		num := (lp - lm) / (2 * h)
		if !approx(p.GLogStd[j], num, 1e-4) {
			t.Fatalf("dlogσ[%d]: analytic %v numeric %v", j, p.GLogStd[j], num)
		}
	}
}

func TestBackwardLogProbGradientNet(t *testing.T) {
	// Finite-difference check of ∂logπ/∂θ for a few network weights.
	rng := rand.New(rand.NewSource(5))
	p := NewGaussianPolicy(3, 2, []int{5}, 0.6, rng)
	s := tensor.Vector{0.4, 0.1, -0.3}
	a := tensor.Vector{-0.2, 0.6}
	p.ZeroGrad()
	p.BackwardLogProb(s, a, 1)
	params := p.Net.Params()
	h := 1e-6
	for pi := range params {
		for _, i := range []int{0, len(params[pi].W) / 2} {
			orig := params[pi].W[i]
			params[pi].W[i] = orig + h
			lp := p.LogProb(s, a)
			params[pi].W[i] = orig - h
			lm := p.LogProb(s, a)
			params[pi].W[i] = orig
			num := (lp - lm) / (2 * h)
			if !approx(params[pi].G[i], num, 1e-4) {
				t.Fatalf("param %q[%d]: analytic %v numeric %v", params[pi].Name, i, params[pi].G[i], num)
			}
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewGaussianPolicy(2, 1, []int{4}, 0.5, rng)
	c := p.Clone()
	s := tensor.Vector{0.3, 0.3}
	a := tensor.Vector{0.1}
	if !approx(p.LogProb(s, a), c.LogProb(s, a), 1e-15) {
		t.Fatal("clone logprob differs")
	}
	// Drift the original, then resync.
	p.LogStd[0] += 0.5
	p.Net.Params()[0].W[0] += 0.1
	if approx(p.LogProb(s, a), c.LogProb(s, a), 1e-12) {
		t.Fatal("clone should be independent")
	}
	c.CopyFrom(p)
	if !approx(p.LogProb(s, a), c.LogProb(s, a), 1e-15) {
		t.Fatal("CopyFrom did not sync")
	}
}

func TestAddEntropyGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewGaussianPolicy(1, 3, []int{3}, 0.5, rng)
	p.ZeroGrad()
	p.AddEntropyGrad(-0.01)
	for _, g := range p.GLogStd {
		if g != -0.01 {
			t.Fatalf("entropy grad = %v", g)
		}
	}
}

func TestGAEKnownValues(t *testing.T) {
	rewards := []float64{1, 1, 1}
	values := []float64{0.5, 0.5, 0.5}
	dones := []bool{false, false, true}
	gamma, lambda := 0.9, 1.0
	adv, ret := GAE(rewards, values, 123 /* ignored: final done */, dones, gamma, lambda)
	// With λ=1 and terminal end: A_t = Σ γ^k r − V(s_t).
	mc2 := 1.0
	mc1 := 1 + gamma*mc2
	mc0 := 1 + gamma*mc1
	for i, want := range []float64{mc0 - 0.5, mc1 - 0.5, mc2 - 0.5} {
		if !approx(adv[i], want, 1e-12) {
			t.Fatalf("adv[%d] = %v want %v", i, adv[i], want)
		}
		if !approx(ret[i], adv[i]+values[i], 1e-12) {
			t.Fatalf("ret[%d] = %v", i, ret[i])
		}
	}
}

func TestGAEBootstrapsLastValue(t *testing.T) {
	rewards := []float64{0}
	values := []float64{1}
	dones := []bool{false}
	adv, _ := GAE(rewards, values, 2, dones, 0.5, 0.9)
	// δ = 0 + 0.5·2 − 1 = 0; A = 0.
	if !approx(adv[0], 0, 1e-12) {
		t.Fatalf("adv = %v", adv[0])
	}
}

func TestGAEDoneResetsAccumulation(t *testing.T) {
	// Identical segments separated by done must get identical advantages.
	rewards := []float64{1, 2, 1, 2}
	values := []float64{0, 0, 0, 0}
	dones := []bool{false, true, false, true}
	adv, _ := GAE(rewards, values, 0, dones, 0.9, 0.9)
	if !approx(adv[0], adv[2], 1e-12) || !approx(adv[1], adv[3], 1e-12) {
		t.Fatalf("episode bleed-through: %v", adv)
	}
}

func TestGAEPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"len":    func() { GAE([]float64{1}, []float64{1, 2}, 0, []bool{false}, 0.9, 0.9) },
		"gamma":  func() { GAE([]float64{1}, []float64{1}, 0, []bool{false}, 1.5, 0.9) },
		"lambda": func() { GAE([]float64{1}, []float64{1}, 0, []bool{false}, 0.9, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNormalizeAdvantages(t *testing.T) {
	adv := []float64{1, 2, 3, 4, 5}
	NormalizeAdvantages(adv)
	var mean, sq float64
	for _, a := range adv {
		mean += a
	}
	mean /= 5
	for _, a := range adv {
		sq += (a - mean) * (a - mean)
	}
	if !approx(mean, 0, 1e-12) || !approx(math.Sqrt(sq/5), 1, 1e-12) {
		t.Fatalf("normalized mean/std = %v/%v", mean, math.Sqrt(sq/5))
	}
	// Constant batch: centered, not divided by ~0.
	c := []float64{2, 2, 2}
	NormalizeAdvantages(c)
	for _, a := range c {
		if !approx(a, 0, 1e-12) {
			t.Fatalf("constant batch = %v", c)
		}
	}
	NormalizeAdvantages(nil) // must not panic
}

func TestBufferSemantics(t *testing.T) {
	b := NewBuffer(2)
	if b.Cap() != 2 || b.Len() != 0 || b.Full() {
		t.Fatal("fresh buffer state wrong")
	}
	b.Add(Transition{Reward: 1})
	b.Add(Transition{Reward: 2})
	if !b.Full() || b.Len() != 2 {
		t.Fatal("buffer should be full")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overfill did not panic")
			}
		}()
		b.Add(Transition{})
	}()
	if b.Items()[1].Reward != 2 {
		t.Fatal("items order wrong")
	}
	b.Clear()
	if b.Len() != 0 || b.Full() {
		t.Fatal("clear failed")
	}
}

func TestNewBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	NewBuffer(0)
}

func TestMakeBatch(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 3; i++ {
		b.Add(Transition{
			State:   tensor.Vector{float64(i)},
			Action:  tensor.Vector{float64(-i)},
			Reward:  1,
			LogProb: float64(i) * 0.1,
			Value:   0.5,
			Done:    i == 2,
		})
	}
	batch := MakeBatch(b, 0, 0.9, 0.95)
	if batch.Len() != 3 {
		t.Fatalf("batch len %d", batch.Len())
	}
	if batch.States[2][0] != 2 || batch.Actions[1][0] != -1 || batch.OldLogProb[1] != 0.1 {
		t.Fatal("batch wiring wrong")
	}
	// Advantages are normalized.
	var mean float64
	for _, a := range batch.Advantages {
		mean += a
	}
	if !approx(mean/3, 0, 1e-12) {
		t.Fatalf("advantage mean %v", mean/3)
	}
}

func TestPPOConfigValidate(t *testing.T) {
	if err := DefaultPPOConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := map[string]func(*PPOConfig){
		"gamma":  func(c *PPOConfig) { c.Gamma = 1.5 },
		"lambda": func(c *PPOConfig) { c.Lambda = -1 },
		"clip":   func(c *PPOConfig) { c.ClipEps = 0 },
		"lr":     func(c *PPOConfig) { c.ActorLR = 0 },
		"epochs": func(c *PPOConfig) { c.Epochs = 0 },
		"mb":     func(c *PPOConfig) { c.MinibatchSize = -1 },
		"coef":   func(c *PPOConfig) { c.EntropyCoef = -1 },
	}
	for name, mut := range muts {
		c := DefaultPPOConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestNewPPOArchitectureChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	actor := NewGaussianPolicy(3, 1, []int{4}, 0.5, rng)
	badOut := nn.NewMLP([]int{3, 4, 2}, nn.Tanh, nn.Identity, rng)
	if _, err := NewPPO(DefaultPPOConfig(), actor, badOut, rng); err == nil {
		t.Fatal("critic with 2 outputs accepted")
	}
	badIn := nn.NewMLP([]int{5, 4, 1}, nn.Tanh, nn.Identity, rng)
	if _, err := NewPPO(DefaultPPOConfig(), actor, badIn, rng); err == nil {
		t.Fatal("state-dim mismatch accepted")
	}
	bad := DefaultPPOConfig()
	bad.Gamma = 2
	good := nn.NewMLP([]int{3, 4, 1}, nn.Tanh, nn.Identity, rng)
	if _, err := NewPPO(bad, actor, good, rng); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// banditEnv is a contextual bandit: reward = −(a − target(s))² with
// target(s) = 0.5·s₀. PPO should steer μ(s) toward the target.
func runBandit(t *testing.T, seed int64) (before, after float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	actor := NewGaussianPolicy(1, 1, []int{16}, 0.4, rng)
	critic := nn.NewMLP([]int{1, 16, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.ActorLR = 1e-2
	cfg.CriticLR = 1e-2
	cfg.Epochs = 6
	cfg.TargetKL = 0 // keep epochs deterministic for the test
	agent, err := NewPPO(cfg, actor, critic, rng)
	if err != nil {
		t.Fatal(err)
	}
	avgReward := func(p *GaussianPolicy) float64 {
		var sum float64
		const n = 400
		for i := 0; i < n; i++ {
			s := tensor.Vector{rng.Float64()*2 - 1}
			a, _ := p.Sample(s, rng)
			target := 0.5 * s[0]
			sum += -(a[0] - target) * (a[0] - target)
		}
		return sum / n
	}
	before = avgReward(actor)
	for round := 0; round < 30; round++ {
		buf := NewBuffer(128)
		for !buf.Full() {
			s := tensor.Vector{rng.Float64()*2 - 1}
			a, logp := actor.Sample(s, rng)
			target := 0.5 * s[0]
			r := -(a[0] - target) * (a[0] - target)
			buf.Add(Transition{
				State: s.Clone(), Action: a.Clone(), Reward: r,
				LogProb: logp, Value: agent.Value(s), Done: true,
			})
		}
		batch := MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda)
		if _, err := agent.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	after = avgReward(actor)
	return before, after
}

func TestPPOImprovesBanditReward(t *testing.T) {
	before, after := runBandit(t, 42)
	if after <= before {
		t.Fatalf("PPO did not improve: %v → %v", before, after)
	}
	if after < -0.1 {
		t.Fatalf("final avg reward %v still far from optimum", after)
	}
}

func TestPPOUpdateStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	actor := NewGaussianPolicy(2, 1, []int{8}, 0.5, rng)
	critic := nn.NewMLP([]int{2, 8, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	agent, err := NewPPO(cfg, actor, critic, rng)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(32)
	for !buf.Full() {
		s := tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
		a, logp := actor.Sample(s, rng)
		buf.Add(Transition{State: s.Clone(), Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: agent.Value(s), Done: rng.Intn(4) == 0})
	}
	batch := MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda)
	st, err := agent.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.ClipFraction < 0 || st.ClipFraction > 1 {
		t.Fatalf("clip fraction %v", st.ClipFraction)
	}
	if st.EpochsRun < 1 || st.EpochsRun > cfg.Epochs {
		t.Fatalf("epochs run %d", st.EpochsRun)
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) || math.IsNaN(st.ApproxKL) {
		t.Fatalf("NaN stats: %+v", st)
	}
	if l := st.Loss(cfg); math.IsNaN(l) {
		t.Fatal("NaN combined loss")
	}
	if _, err := agent.Update(&Batch{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestPPOFirstUpdateRatioIsOne(t *testing.T) {
	// Immediately after sampling, new params == old params, so ratios are 1
	// and nothing clips in the first epoch. We verify via a single-epoch
	// update with tiny LR: clip fraction stays ~0.
	rng := rand.New(rand.NewSource(10))
	actor := NewGaussianPolicy(1, 1, []int{4}, 0.5, rng)
	critic := nn.NewMLP([]int{1, 4, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.Epochs = 1
	cfg.ActorLR = 1e-12
	cfg.MinibatchSize = 0
	agent, _ := NewPPO(cfg, actor, critic, rng)
	buf := NewBuffer(16)
	for !buf.Full() {
		s := tensor.Vector{rng.NormFloat64()}
		a, logp := actor.Sample(s, rng)
		buf.Add(Transition{State: s.Clone(), Action: a.Clone(), Reward: 1,
			LogProb: logp, Value: agent.Value(s), Done: true})
	}
	st, err := agent.Update(MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda))
	if err != nil {
		t.Fatal(err)
	}
	if st.ClipFraction != 0 {
		t.Fatalf("on-policy first epoch clipped %v of samples", st.ClipFraction)
	}
	if !approx(st.ApproxKL, 0, 1e-6) {
		t.Fatalf("on-policy KL = %v", st.ApproxKL)
	}
}

func TestGAELambdaZeroIsTD(t *testing.T) {
	// λ=0 ⇒ A_t = δ_t exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		r := make([]float64, n)
		v := make([]float64, n)
		d := make([]bool, n)
		for i := range r {
			r[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
			d[i] = rng.Intn(3) == 0
		}
		last := rng.NormFloat64()
		adv, _ := GAE(r, v, last, d, 0.9, 0)
		for t := 0; t < n; t++ {
			nv := last
			if t < n-1 {
				nv = v[t+1]
			}
			notDone := 1.0
			if d[t] {
				notDone = 0
			}
			delta := r[t] + 0.9*nv*notDone - v[t]
			if !approx(adv[t], delta, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
