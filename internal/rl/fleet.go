package rl

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FleetActor is a float32 serving front-end for a trained policy. It
// snapshots the actor network once (saturating float64→float32 weight
// conversion, k-major layout) and prices an entire fleet tick with one
// panel-blocked batched forward instead of one float64 MLP call per device.
//
// The snapshot is immutable: training continues on the float64 parameters
// and never observes the copy, so enabling the fleet actor cannot perturb
// learning. Conversely the snapshot does not track later weight updates —
// build a fresh FleetActor after each training round that should reach
// serving. Not safe for concurrent use (it owns a scratch arena); give each
// serving goroutine its own.
type FleetActor struct {
	net *nn.Infer32

	rows    int // device rows per full state: N for shared policies, 1 otherwise
	rowDim  int // input columns per row
	outCols int // network outputs per row

	stateDim  int
	actionDim int

	ar *tensor.Arena
}

// NewFleetActor builds a float32 serving snapshot of p. Supported policies
// are *SharedGaussianPolicy (the state is reshaped to N per-device rows, so
// one matmul pass covers the fleet) and *GaussianPolicy (a single-row
// batch). Other policy types have no MLP actor to snapshot.
func NewFleetActor(p Policy) (*FleetActor, error) {
	switch pol := p.(type) {
	case *SharedGaussianPolicy:
		return &FleetActor{
			net:       nn.NewInfer32(pol.Net),
			rows:      pol.N,
			rowDim:    pol.Net.InDim(),
			outCols:   pol.Net.OutDim(),
			stateDim:  pol.StateDim(),
			actionDim: pol.ActionDim(),
			ar:        tensor.NewArena(),
		}, nil
	case *GaussianPolicy:
		return &FleetActor{
			net:       nn.NewInfer32(pol.Net),
			rows:      1,
			rowDim:    pol.StateDim(),
			outCols:   pol.ActionDim(),
			stateDim:  pol.StateDim(),
			actionDim: pol.ActionDim(),
			ar:        tensor.NewArena(),
		}, nil
	default:
		return nil, fmt.Errorf("rl: no float32 fleet actor for policy type %T", p)
	}
}

// StateDim returns the expected state length.
func (f *FleetActor) StateDim() int { return f.stateDim }

// ActionDim returns the action length.
func (f *FleetActor) ActionDim() int { return f.actionDim }

// Backend names the active float32 kernel implementation (for audit lines).
func (f *FleetActor) Backend() string { return "f32-" + tensor.F32Backend() }

// MeanInto computes the deterministic action μ(s) into dst using the
// float32 batched forward. s is converted with saturating float64→float32
// semantics, so guard-sanitized extreme-but-finite states drive tanh to its
// ±1 plateau exactly as they do in float64 instead of overflowing to Inf.
// After a warmup call the steady state performs zero heap allocations
// (pinned by the AllocsPerRun tests).
func (f *FleetActor) MeanInto(dst, s tensor.Vector) {
	if len(s) != f.stateDim || len(dst) != f.actionDim {
		panic(fmt.Sprintf("rl: FleetActor.MeanInto shape mismatch: state %d (want %d), action %d (want %d)",
			len(s), f.stateDim, len(dst), f.actionDim))
	}
	f.ar.Reset()
	X := f.ar.Matrix32(f.rows, f.rowDim)
	tensor.ConvertSat(X.Data, s)
	out := f.ar.Matrix32(f.rows, f.outCols)
	f.net.ForwardBatch(out, X, f.ar)
	for i, v := range out.Data {
		dst[i] = float64(v)
	}
}

// Mean implements the Policy Mean shape contract (freshly allocated result);
// hot paths should use MeanInto.
func (f *FleetActor) Mean(s tensor.Vector) tensor.Vector {
	dst := tensor.NewVector(f.actionDim)
	f.MeanInto(dst, s)
	return dst
}
