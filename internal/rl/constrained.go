package rl

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements the Lagrangian constrained-PPO variant (ROADMAP item
// 4, after the safe-DRL FL formulation of arXiv 2308.10664): alongside the
// reward the environment emits per-constraint cost signals (deadline
// overshoot, energy-budget overrun), a cost critic regresses their
// discounted returns, and the surrogate ascends the penalized advantage
//
//	Â_eff = (Â_r − Σ_j λ_j·Â_cj) / (1 + Σ_j λ_j)
//
// while the multipliers follow projected dual ascent on the batch-mean cost:
//
//	λ_j ← clamp(λ_j + η·(Ĵ_cj − d_j), 0, λ_max).
//
// The cost critic's forward/backward waves are fused into the existing
// gradient-shard engine (same fixed 16-row blocks, same worker-independent
// merge tree), so the constrained update keeps both invariants of the plain
// one: bit-identical results at any Workers setting and a zero-allocation
// steady state. Multiplier state is serializable (ConstrainedState) so
// crash-safe resume stays bit-identical too.

// ConstraintConfig parameterizes the Lagrangian constrained-PPO variant.
// The zero value means unconstrained (plain PPO).
type ConstraintConfig struct {
	// Enabled switches the Lagrangian machinery on.
	Enabled bool
	// CostLimit is d_j: the per-constraint limit the batch-mean episodic
	// cost is driven under. Since the env's cost signals are normalized
	// overshoots, 0 demands no violation at all.
	CostLimit CostVec
	// LagrangeLR is η, the projected-ascent step size of the multipliers.
	LagrangeLR float64
	// MultiplierMax caps each λ_j, bounding how hard a persistently
	// violated constraint can squash the reward signal.
	MultiplierMax float64
	// CostCriticLR is the Adam learning rate of the cost critic.
	CostCriticLR float64
	// Init seeds the multipliers (clamped into [0, MultiplierMax]).
	Init CostVec
}

// DefaultConstraintConfig returns multiplier dynamics that converge on the
// paper's testbed scenario without drowning the reward signal.
func DefaultConstraintConfig() ConstraintConfig {
	return ConstraintConfig{
		Enabled:       true,
		LagrangeLR:    0.05,
		MultiplierMax: 10,
		CostCriticLR:  1e-3,
	}
}

// Validate checks the constraint configuration (only when Enabled).
func (c ConstraintConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.LagrangeLR <= 0:
		return fmt.Errorf("rl: Lagrange step size %v must be positive", c.LagrangeLR)
	case c.MultiplierMax <= 0:
		return fmt.Errorf("rl: multiplier cap %v must be positive", c.MultiplierMax)
	case c.CostCriticLR <= 0:
		return fmt.Errorf("rl: cost critic learning rate %v must be positive", c.CostCriticLR)
	}
	for j := 0; j < NumConstraints; j++ {
		if c.CostLimit[j] < 0 || !finite(c.CostLimit[j]) {
			return fmt.Errorf("rl: cost limit d_%d = %v invalid", j, c.CostLimit[j])
		}
		if c.Init[j] < 0 || c.Init[j] > c.MultiplierMax {
			return fmt.Errorf("rl: initial multiplier λ_%d = %v outside [0, %v]", j, c.Init[j], c.MultiplierMax)
		}
	}
	return nil
}

// NewConstrainedPPO wires a Lagrangian PPO: like NewPPO plus a cost critic
// with one output per constraint and the multiplier state. The actor must
// implement ShardedPolicy (both built-in policies do) — the constrained
// update exists only on the data-parallel engine path, which is what keeps
// it worker-count invariant and allocation-free.
func NewConstrainedPPO(cfg PPOConfig, actor Policy, critic, costCritic *nn.MLP, rng *rand.Rand) (*PPO, error) {
	if !cfg.Constraint.Enabled {
		return nil, fmt.Errorf("rl: NewConstrainedPPO with Constraint.Enabled=false")
	}
	if _, ok := actor.(ShardedPolicy); !ok {
		return nil, fmt.Errorf("rl: constrained PPO requires a sharded policy, have %T", actor)
	}
	if costCritic.OutDim() != NumConstraints {
		return nil, fmt.Errorf("rl: cost critic must output %d values, has %d", NumConstraints, costCritic.OutDim())
	}
	if costCritic.InDim() != actor.StateDim() {
		return nil, fmt.Errorf("rl: actor/cost-critic state dims differ: %d vs %d", actor.StateDim(), costCritic.InDim())
	}
	p, err := NewPPO(cfg, actor, critic, rng)
	if err != nil {
		return nil, err
	}
	p.CostCritic = costCritic
	p.costOpt = nn.NewAdam(cfg.Constraint.CostCriticLR)
	p.lambda = cfg.Constraint.Init
	return p, nil
}

// Constrained reports whether this PPO runs the Lagrangian update.
func (p *PPO) Constrained() bool { return p.CostCritic != nil }

// Multipliers returns the current Lagrange multipliers (zero vector when
// unconstrained).
func (p *PPO) Multipliers() CostVec { return p.lambda }

// CostValues returns the cost critic's per-constraint estimates K(s), used
// to bootstrap cost-GAE at buffer boundaries.
func (p *PPO) CostValues(s tensor.Vector) CostVec {
	var k CostVec
	if p.CostCritic == nil {
		return k
	}
	out := p.CostCritic.Forward(s)
	copy(k[:], out)
	return k
}

// CostOptimizer exposes the cost critic's Adam instance for checkpointing
// (nil when unconstrained).
func (p *PPO) CostOptimizer() *nn.Adam { return p.costOpt }

// ConstrainedState is the serializable snapshot of the Lagrangian extras:
// multipliers, cost critic weights, and cost optimizer moments. It rides in
// core.Checkpoint so constrained training resumes bit-identically.
type ConstrainedState struct {
	Multipliers []float64    `json:"multipliers"`
	CostCritic  nn.MLPState  `json:"cost_critic"`
	CostOpt     nn.AdamState `json:"cost_opt"`
}

// CaptureConstrained snapshots the Lagrangian state, or nil when this PPO
// is unconstrained (so plain checkpoints stay byte-identical to before).
func (p *PPO) CaptureConstrained() *ConstrainedState {
	if p.CostCritic == nil {
		return nil
	}
	return &ConstrainedState{
		Multipliers: append([]float64(nil), p.lambda[:]...),
		CostCritic:  p.CostCritic.State(),
		CostOpt:     p.costOpt.State(p.CostCritic.Params()),
	}
}

// RestoreConstrained copies a snapshot back in place. A nil snapshot is
// valid only for an unconstrained PPO, and vice versa — resuming a
// constrained run from an unconstrained checkpoint (or the reverse) is a
// configuration error, not a silent reset.
func (p *PPO) RestoreConstrained(st *ConstrainedState) error {
	if st == nil {
		if p.CostCritic != nil {
			return fmt.Errorf("rl: checkpoint has no constrained state, trainer is constrained")
		}
		return nil
	}
	if p.CostCritic == nil {
		return fmt.Errorf("rl: checkpoint has constrained state, trainer is unconstrained")
	}
	if len(st.Multipliers) != NumConstraints {
		return fmt.Errorf("rl: checkpoint has %d multipliers, want %d", len(st.Multipliers), NumConstraints)
	}
	for j, l := range st.Multipliers {
		if l < 0 || !finite(l) {
			return fmt.Errorf("rl: checkpoint multiplier λ_%d = %v invalid", j, l)
		}
	}
	if err := p.CostCritic.LoadState(st.CostCritic); err != nil {
		return err
	}
	if err := p.costOpt.LoadState(p.CostCritic.Params(), st.CostOpt); err != nil {
		return err
	}
	copy(p.lambda[:], st.Multipliers)
	return nil
}
