package rl

import (
	"errors"
	"sync"
	"testing"
)

// TestCollectEpisodesOrdering pins the determinism contract: the returned
// slice is indexed by episode regardless of worker count or scheduling.
func TestCollectEpisodesOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		trs, err := CollectEpisodes(5, 12, workers, func(worker, episode int) (*Trajectory, error) {
			return &Trajectory{Episode: episode}, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(trs) != 12 {
			t.Fatalf("workers=%d: got %d trajectories", workers, len(trs))
		}
		for i, tr := range trs {
			if tr.Episode != 5+i {
				t.Fatalf("workers=%d: slot %d holds episode %d", workers, i, tr.Episode)
			}
		}
	}
}

// TestCollectEpisodesWorkerBounds checks that worker indices stay within
// min(workers, count) so callers can size per-worker clone slices exactly.
func TestCollectEpisodesWorkerBounds(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	_, err := CollectEpisodes(0, 3, 16, func(worker, episode int) (*Trajectory, error) {
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
		return &Trajectory{Episode: episode}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := range seen {
		if w < 0 || w >= 3 {
			t.Fatalf("worker index %d outside [0,3)", w)
		}
	}
}

func TestCollectEpisodesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		ran := 0
		trs, err := CollectEpisodes(0, 50, workers, func(worker, episode int) (*Trajectory, error) {
			mu.Lock()
			ran++
			mu.Unlock()
			if episode == 2 {
				return nil, boom
			}
			return &Trajectory{Episode: episode}, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, boom)
		}
		if trs != nil {
			t.Fatalf("workers=%d: trajectories returned alongside error", workers)
		}
		// The serial path must stop at the failing episode; the pool stops
		// dispatching once the error lands, which is scheduling-dependent,
		// so only the serial count is pinned exactly.
		if workers == 1 && ran != 3 {
			t.Fatalf("serial run executed %d episodes, want 3", ran)
		}
	}
}

func TestCollectEpisodesEmpty(t *testing.T) {
	trs, err := CollectEpisodes(0, 0, 4, func(worker, episode int) (*Trajectory, error) {
		t.Fatal("collect called for empty range")
		return nil, nil
	})
	if err != nil || trs != nil {
		t.Fatalf("got %v, %v", trs, err)
	}
}
