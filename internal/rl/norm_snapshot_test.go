package rl

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestNormalizerSnapshotIndependent checks Snapshot returns a deep copy:
// mutating the live normalizer afterwards must not move the snapshot.
func TestNormalizerSnapshotIndependent(t *testing.T) {
	n := NewObsNormalizer(3, 5)
	n.Update(tensor.Vector{1, 2, 3})
	n.Update(tensor.Vector{4, 5, 6})
	st := n.Snapshot()
	if st.Dim() != 3 || st.Count != 2 || st.Clip != 5 {
		t.Fatalf("snapshot = %+v", st)
	}
	before := append([]float64(nil), st.Mean...)
	n.Update(tensor.Vector{100, -7, 0.25})
	for i := range before {
		if st.Mean[i] != before[i] {
			t.Fatalf("snapshot aliased live normalizer: dim %d moved %v -> %v", i, before[i], st.Mean[i])
		}
	}
}

// TestNormalizerSnapshotStdMatches checks NormalizerState.StdDev agrees
// exactly with the live ObsNormalizer.Std in every regime (empty, single
// observation, degenerate variance, regular).
func TestNormalizerSnapshotStdMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewObsNormalizer(4, 0)
	check := func(stage string) {
		st := n.Snapshot()
		for i := 0; i < n.Dim(); i++ {
			if got, want := st.StdDev(i), n.Std(i); got != want {
				t.Fatalf("%s: dim %d snapshot std %v, live std %v", stage, i, got, want)
			}
		}
	}
	check("empty")
	n.Update(tensor.Vector{1, 1, 1, 1})
	check("single")
	n.Update(tensor.Vector{1, 1, 1, 1}) // zero variance: floor must kick in
	check("degenerate")
	for k := 0; k < 64; k++ {
		n.Update(tensor.Vector{
			rng.NormFloat64(), 10 * rng.NormFloat64(), 1e-3 * rng.NormFloat64(), 1e6 * rng.NormFloat64(),
		})
	}
	check("regular")
}

// TestNormalizerStateRoundTripBitExact is the regression test for the
// checkpoint path: a NormalizerState must survive JSON encode/decode with
// every float64 bit-identical (math.Float64bits equality, not approximate),
// because online normalization must reproduce training normalization
// exactly — an ULP of drift in the running mean changes the normalized
// state the deployed actor sees.
func TestNormalizerStateRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewObsNormalizer(6, 10)
	for k := 0; k < 257; k++ {
		s := tensor.NewVector(6)
		for i := range s {
			// Scales spanning 12 orders of magnitude plus awkward
			// non-representable decimals: the worst case for a lossy
			// formatter.
			s[i] = (0.1 + rng.NormFloat64()) * math.Pow(10, float64(i*4-8)) / 3
		}
		n.Update(s)
	}
	st := n.Snapshot()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back NormalizerState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dim() != st.Dim() {
		t.Fatalf("round-trip dim %d, want %d", back.Dim(), st.Dim())
	}
	bits := func(v float64) uint64 { return math.Float64bits(v) }
	if bits(back.Count) != bits(st.Count) || bits(back.Clip) != bits(st.Clip) {
		t.Fatalf("count/clip drifted: %v/%v vs %v/%v", back.Count, back.Clip, st.Count, st.Clip)
	}
	for i := 0; i < st.Dim(); i++ {
		if bits(back.Mean[i]) != bits(st.Mean[i]) {
			t.Fatalf("mean[%d] drifted: %x vs %x (%v vs %v)", i, bits(back.Mean[i]), bits(st.Mean[i]), back.Mean[i], st.Mean[i])
		}
		if bits(back.M2[i]) != bits(st.M2[i]) {
			t.Fatalf("m2[%d] drifted: %x vs %x (%v vs %v)", i, bits(back.M2[i]), bits(st.M2[i]), back.M2[i], st.M2[i])
		}
	}
	// The restored state must also normalize identically through a live
	// normalizer, which is the property the bits ultimately serve.
	m := NewObsNormalizer(6, 10)
	if err := RestoreNormalizer(m, back); err != nil {
		t.Fatal(err)
	}
	probe := tensor.Vector{1, -2, 3e-5, 4e5, -5, 0.625}
	a, b := n.Normalize(probe), m.Normalize(probe)
	for i := range a {
		if bits(a[i]) != bits(b[i]) {
			t.Fatalf("normalized[%d] drifted after restore: %v vs %v", i, a[i], b[i])
		}
	}
}
