//go:build !race

package rl

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// The steady-state allocation gates for the training path. After a warmup
// update builds the engine, arena, and scratch, a single-threaded update
// must not touch the heap: staging is arena-carved, gradients go to
// persistent replicas, the optimizer tail reads gradients in place, and the
// full-batch KL reuses the engine's forward wave. Excluded under -race: the
// race runtime instruments allocations.

func TestPPOUpdateSteadyStateAllocs(t *testing.T) {
	p, actor, critic := buildEnginePPO(t, "joint", 5, 0)
	batch := randomBatchFor(actor, critic, 57, rand.New(rand.NewSource(6)))
	if _, err := p.Update(batch); err != nil { // warmup
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := p.Update(batch); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PPO.Update allocates %v times per run in steady state, want 0", allocs)
	}
}

// TestConstrainedPPOUpdateSteadyStateAllocs extends the gate to the
// Lagrangian path: the fused cost-critic waves and the multiplier step must
// not reintroduce steady-state allocations.
func TestConstrainedPPOUpdateSteadyStateAllocs(t *testing.T) {
	p, actor, critic, costCritic := buildConstrainedPPO(t, "joint", 5, 0)
	batch := randomConstrainedBatchFor(actor, critic, costCritic, 57, rand.New(rand.NewSource(6)))
	if _, err := p.Update(batch); err != nil { // warmup
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := p.Update(batch); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("constrained PPO.Update allocates %v times per run in steady state, want 0", allocs)
	}
}

func TestA2CUpdateSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	actor := NewGaussianPolicy(10, 3, []int{16}, 0.4, rng)
	critic := nn.NewMLP([]int{10, 16, 1}, nn.Tanh, nn.Identity, rng)
	a, err := NewA2C(DefaultA2CConfig(), actor, critic)
	if err != nil {
		t.Fatal(err)
	}
	batch := randomBatchFor(actor, critic, 53, rand.New(rand.NewSource(10)))
	if _, err := a.Update(batch); err != nil { // warmup
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := a.Update(batch); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("A2C.Update allocates %v times per run in steady state, want 0", allocs)
	}
}

// TestMakeBatchIntoSteadyStateAllocs gates the buffer→batch conversion the
// trainer performs on every buffer drain.
func TestMakeBatchIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	actor := NewGaussianPolicy(6, 2, []int{8}, 0.5, rng)
	critic := nn.NewMLP([]int{6, 8, 1}, nn.Tanh, nn.Identity, rng)
	buf := NewBuffer(40)
	for !buf.Full() {
		s := make([]float64, 6)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		buf.Add(Transition{State: s, Action: a, Reward: rng.NormFloat64(),
			LogProb: logp, Value: critic.Forward(s)[0], Done: rng.Intn(9) == 0})
	}
	dst := &Batch{}
	MakeBatchInto(dst, buf, 0, 0.95, 0.95) // warmup sizes the slices
	allocs := testing.AllocsPerRun(10, func() {
		MakeBatchInto(dst, buf, 0, 0.95, 0.95)
	})
	if allocs != 0 {
		t.Fatalf("MakeBatchInto allocates %v times per run in steady state, want 0", allocs)
	}
}
