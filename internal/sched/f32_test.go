package sched

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/rl"
	"repro/internal/tensor"
)

func TestDRLF32ServesCloseToF64(t *testing.T) {
	sys := dynamicSystem(4, 17)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	perDev := cfg.History + 1
	pol := rl.NewSharedGaussianPolicy(4, perDev, []int{16, 16}, 0.5, rng)

	d64, err := NewDRL(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := NewDRL(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d32.F32 = true

	for k := 0; k < 5; k++ {
		ctx := Context{Sys: sys, Clock: float64(k) * 30, Iter: k}
		want, err := d64.Frequencies(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d32.Frequencies(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rel := math.Abs(got[i]-want[i]) / want[i]; rel > 1e-3 {
				t.Fatalf("iter %d dev %d: f32 %v vs f64 %v (rel %g)", k, i, got[i], want[i], rel)
			}
		}
	}
	if b := d64.Backend(); b != "f64" {
		t.Fatalf("f64 DRL reports backend %q", b)
	}
	if b := d32.Backend(); !strings.HasPrefix(b, "f32-") {
		t.Fatalf("f32 DRL reports backend %q, want f32-*", b)
	}
}

// stubPolicy has no MLP actor, so the fleet snapshot must fail and the DRL
// must quietly serve float64.
type stubPolicy struct {
	rl.Policy
	dim int
}

func (s stubPolicy) StateDim() int  { return s.dim }
func (s stubPolicy) ActionDim() int { return s.dim }
func (s stubPolicy) Mean(v tensor.Vector) tensor.Vector {
	out := tensor.NewVector(s.dim)
	out.Fill(0.5)
	return out
}

func TestDRLF32UnsupportedPolicyFallsBack(t *testing.T) {
	sys := dynamicSystem(3, 7)
	cfg := env.DefaultConfig()
	d, err := NewDRL(stubPolicy{dim: 3 * (cfg.History + 1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.F32 = true
	// dim is wrong for a real state build, so drive FrequenciesFromState
	// with a hand-made state of the right size.
	state := tensor.NewVector(d.Policy.StateDim())
	if _, err := d.FrequenciesFromState(Context{Sys: sys}, state[:3*(cfg.History+1)]); err != nil {
		// MapAction needs ActionDim == sys.N; stubPolicy's ActionDim is
		// larger, so an error here is fine — the point is no panic and a
		// truthful Backend report.
		t.Logf("serve error (expected for the stub): %v", err)
	}
	if b := d.Backend(); b != "f64" {
		t.Fatalf("unsupported policy must fall back to f64, got %q", b)
	}
	if err := d.F32Err(); err == nil {
		t.Fatal("degraded f32 backend must surface its sticky error through F32Err")
	}
	if n := d.F32Fallbacks(); n == 0 {
		t.Fatal("f64 serves under a requested-but-failed f32 backend must be counted")
	}
}

// TestDRLF32HealthyBackendReportsNoFallback is the negative control: a
// working f32 snapshot neither errors nor counts fallbacks, and a plain
// f64 DRL never reports an F32 error.
func TestDRLF32HealthyBackendReportsNoFallback(t *testing.T) {
	sys := dynamicSystem(3, 7)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(6))
	pol := rl.NewSharedGaussianPolicy(3, cfg.History+1, []int{8}, 0.5, rng)
	d, err := NewDRL(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.F32 = true
	if _, err := d.Frequencies(Context{Sys: sys, Clock: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.F32Err(); err != nil {
		t.Fatalf("healthy f32 backend reported error: %v", err)
	}
	if n := d.F32Fallbacks(); n != 0 {
		t.Fatalf("healthy f32 backend counted %d fallbacks", n)
	}
	d64, err := NewDRL(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d64.F32Err(); err != nil {
		t.Fatalf("f64-only DRL reported an f32 error: %v", err)
	}
}

func TestDRLFrequenciesFromStateIntoReusesDst(t *testing.T) {
	sys := dynamicSystem(3, 11)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(8))
	pol := rl.NewSharedGaussianPolicy(3, cfg.History+1, []int{8}, 0.5, rng)
	d, err := NewDRL(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := env.BuildState(sys, 50, cfg)
	dst := make([]float64, 3)
	out, err := d.FrequenciesFromStateInto(dst, Context{Sys: sys, Clock: 50}, state)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[0] {
		t.Fatal("FrequenciesFromStateInto did not reuse the provided destination")
	}
	ref, err := d.FrequenciesFromState(Context{Sys: sys, Clock: 50}, state)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Float64bits(out[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("dev %d: Into %v differs from allocating path %v", i, out[i], ref[i])
		}
	}
}
