// Package sched implements the CPU-frequency schedulers compared in the
// paper's evaluation (§V): the proposed DRL agent, the Heuristic baseline of
// Wang et al. [3] (re-optimize every iteration from the previous iteration's
// observed bandwidth), the Static baseline of Tran et al. [4] (optimize once
// from an initial bandwidth estimate, then never adapt), plus MaxFreq,
// Random and Oracle references.
//
// All model-based schedulers share one deterministic subproblem: given an
// assumed (constant) bandwidth per device, pick frequencies minimizing
// T + λΣE. For a fixed deadline T, energy is minimized by running each
// device just fast enough — δ_i(T) = clamp(w_i/(T − t_com,i)) — so the
// problem collapses to a 1-D convex minimization over T, solved numerically.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/optimizer"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// Context is everything a scheduler may observe when choosing frequencies
// for the upcoming iteration. Crucially, no scheduler (except Oracle) sees
// the future bandwidth.
type Context struct {
	// Sys is the federated-learning system.
	Sys *fl.System
	// Clock is the wall-clock time t^k at which the iteration starts.
	Clock float64
	// Iter is k (0-based).
	Iter int
	// LastBW holds each device's realized mean bandwidth in iteration k−1,
	// or nil for the first iteration.
	LastBW []float64
	// Down marks devices crashed for the upcoming iteration (fault
	// injection); nil when the run is fault-free. Schedulers may use it to
	// mask missing observations — the engine ignores frequencies assigned
	// to down devices.
	Down []bool
}

// Scheduler chooses per-device CPU frequencies at the start of an iteration.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Frequencies returns one frequency per device, each in (0, δ_i^max].
	Frequencies(ctx Context) ([]float64, error)
}

// PlanCost evaluates the planner's objective — barrier finish time plus
// λ-weighted energy under assumed constant bandwidths — for a *fixed*
// frequency plan. It is the same cost model PlanFrequencies minimizes,
// exposed so the guard's plan-sanity layer can price a proposed plan
// against the max-frequency safe plan before serving it.
func PlanCost(sys *fl.System, assumedBW, freqs []float64) (float64, error) {
	n := sys.N()
	if len(assumedBW) != n {
		return 0, fmt.Errorf("sched: %d bandwidths for %d devices", len(assumedBW), n)
	}
	if len(freqs) != n {
		return 0, fmt.Errorf("sched: %d frequencies for %d devices", len(freqs), n)
	}
	var finish, energy float64
	for i, d := range sys.Devices {
		bw := assumedBW[i]
		if !(bw > 0) || math.IsInf(bw, 0) {
			return 0, fmt.Errorf("sched: invalid assumed bandwidth %v for device %d", bw, i)
		}
		f := freqs[i]
		if !(f > 0) || f > d.MaxFreqHz*(1+1e-9) {
			return 0, fmt.Errorf("sched: device %d frequency %v outside (0, %v]", i, f, d.MaxFreqHz)
		}
		tcom := sys.ModelBytes / bw
		if ti := d.Workload(sys.Tau)/f + tcom; ti > finish {
			finish = ti
		}
		energy += d.ComputeEnergy(sys.Tau, f) + d.TxEnergy(tcom)
	}
	return finish + sys.Lambda*energy, nil
}

// PlanFrequencies solves the known-bandwidth allocation: assuming device i
// uploads at a constant assumedBW[i] bytes/s, it returns frequencies
// minimizing F(T) + λ·ΣE over deadlines T, where each device runs just fast
// enough to finish by T (clamped to [minFrac·δmax, δmax]).
func PlanFrequencies(sys *fl.System, assumedBW []float64, minFrac float64) ([]float64, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := sys.N()
	if len(assumedBW) != n {
		return nil, fmt.Errorf("sched: %d bandwidths for %d devices", len(assumedBW), n)
	}
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	work := make([]float64, n) // w_i = τ·c_i·D_i
	tcom := make([]float64, n) // ξ/B_i
	loHz := make([]float64, n) // frequency floor
	for i, d := range sys.Devices {
		if assumedBW[i] <= 0 || math.IsNaN(assumedBW[i]) || math.IsInf(assumedBW[i], 0) {
			return nil, fmt.Errorf("sched: invalid assumed bandwidth %v for device %d", assumedBW[i], i)
		}
		work[i] = d.Workload(sys.Tau)
		tcom[i] = sys.ModelBytes / assumedBW[i]
		loHz[i] = minFrac * d.MaxFreqHz
	}

	// One frequency buffer shared by every freqsAt evaluation: cost() is
	// called a few hundred times by the 1-D optimizer below, and each call
	// only needs the frequencies transiently. The final freqsAt result is
	// returned to the caller, which then owns the buffer.
	fs := make([]float64, n)
	freqsAt := func(T float64) []float64 {
		for i, d := range sys.Devices {
			slack := T - tcom[i]
			var f float64
			if slack <= 0 {
				f = d.MaxFreqHz
			} else {
				f = work[i] / slack
			}
			if f > d.MaxFreqHz {
				f = d.MaxFreqHz
			}
			if f < loHz[i] {
				f = loHz[i]
			}
			fs[i] = f
		}
		return fs
	}
	cost := func(T float64) float64 {
		fs := freqsAt(T)
		finish := 0.0
		var energy float64
		for i, d := range sys.Devices {
			ti := work[i]/fs[i] + tcom[i]
			if ti > finish {
				finish = ti
			}
			energy += d.ComputeEnergy(sys.Tau, fs[i]) + d.TxEnergy(tcom[i])
		}
		return finish + sys.Lambda*energy
	}

	var tMin, tMax float64
	for i, d := range sys.Devices {
		if t := tcom[i] + work[i]/d.MaxFreqHz; t > tMin {
			tMin = t
		}
		if t := tcom[i] + work[i]/loHz[i]; t > tMax {
			tMax = t
		}
	}
	if tMax <= tMin {
		return freqsAt(tMin), nil
	}
	T, _ := optimizer.Refined(cost, tMin, tMax, 200, 1e-6*(tMax-tMin)+1e-12)
	return freqsAt(T), nil
}

// MaxFreq always runs every device at δ_i^max — the energy-oblivious
// federated-learning default the paper's introduction argues against.
type MaxFreq struct{}

// Name implements Scheduler.
func (MaxFreq) Name() string { return "maxfreq" }

// Frequencies implements Scheduler.
func (MaxFreq) Frequencies(ctx Context) ([]float64, error) {
	fs := make([]float64, ctx.Sys.N())
	for i, d := range ctx.Sys.Devices {
		fs[i] = d.MaxFreqHz
	}
	return fs, nil
}

// Random draws each frequency uniformly from [minFrac·δmax, δmax] — a
// sanity-check lower bound on scheduler quality.
type Random struct {
	MinFrac float64
	Rng     *rand.Rand
}

// NewRandom constructs a Random scheduler.
func NewRandom(minFrac float64, rng *rand.Rand) (*Random, error) {
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: nil rng")
	}
	return &Random{MinFrac: minFrac, Rng: rng}, nil
}

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Frequencies implements Scheduler.
func (r *Random) Frequencies(ctx Context) ([]float64, error) {
	fs := make([]float64, ctx.Sys.N())
	for i, d := range ctx.Sys.Devices {
		frac := r.MinFrac + r.Rng.Float64()*(1-r.MinFrac)
		fs[i] = frac * d.MaxFreqHz
	}
	return fs, nil
}

// Static is the baseline of Tran et al. [4]: it assumes the network is
// static, solves the allocation once from an initial bandwidth estimate
// (the paper implements it as the average of randomly sampled bandwidth
// data), and applies the same frequencies at every iteration.
type Static struct {
	fixed []float64
}

// NewStatic solves the allocation for the assumed bandwidths up front.
func NewStatic(sys *fl.System, assumedBW []float64, minFrac float64) (*Static, error) {
	fs, err := PlanFrequencies(sys, assumedBW, minFrac)
	if err != nil {
		return nil, err
	}
	return &Static{fixed: fs}, nil
}

// NewStaticSampled builds the Static baseline the way the paper describes
// its implementation: "we randomly select some bandwidth data from the
// dataset, and determine the CPU-cycle frequency for each mobile device
// according to the average value of these bandwidth data". Each device's
// assumed bandwidth is the mean of `samples` random draws from its own
// trace, so a small sample misestimates a volatile link — the source of
// Static's poor showing in Fig. 7/8.
func NewStaticSampled(sys *fl.System, samples int, minFrac float64, rng *rand.Rand) (*Static, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("sched: sample count %d must be positive", samples)
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: nil rng")
	}
	bw := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		var sum float64
		for s := 0; s < samples; s++ {
			sum += tr.Samples[rng.Intn(len(tr.Samples))]
		}
		bw[i] = sum / float64(samples)
		if bw[i] <= 0 {
			bw[i] = 1 // an all-outage sample: assume a trickle
		}
	}
	return NewStatic(sys, bw, minFrac)
}

// NewStaticDecoupled builds the Static baseline in the barrier-unaware form
// of Tran et al. [4]: each device independently minimizes its *own* cost
// t_i + λ·E_i — the tradeoff between computation time and energy — with no
// knowledge of the synchronization barrier (exploiting that barrier slack is
// precisely this paper's contribution, so the 2019 baseline cannot have it).
// Under eq. (1)+(6) the per-device optimum is closed-form:
//
//	d/dδ [w/δ + λ·α·w·δ²] = 0  ⇒  δ* = (2λα)^{-1/3}
//
// clamped to [minFrac·δmax, δmax]; the bandwidth estimate only shifts the
// additive upload term, so the resulting frequencies are fixed for the whole
// run — the paper's "consistent CPU-cycle frequency".
func NewStaticDecoupled(sys *fl.System, minFrac float64) (*Static, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	fs := make([]float64, sys.N())
	for i, d := range sys.Devices {
		var f float64
		if sys.Lambda > 0 {
			f = math.Pow(2*sys.Lambda*d.Alpha, -1.0/3.0)
		} else {
			f = d.MaxFreqHz // time-only objective: run flat out
		}
		f = d.ClampFreq(f, minFrac)
		fs[i] = f
	}
	return &Static{fixed: fs}, nil
}

// NewStaticPooled builds the Static baseline exactly as §V-A describes it:
// "we randomly select some bandwidth data from the dataset, and determine
// the CPU-cycle frequency for each mobile device according to the average
// value of these bandwidth data" — one pooled average across the whole
// dataset, applied to every device. Ignoring per-device link heterogeneity
// is what makes Static the weakest baseline in Fig. 7/8.
func NewStaticPooled(sys *fl.System, samples int, minFrac float64, rng *rand.Rand) (*Static, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("sched: sample count %d must be positive", samples)
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: nil rng")
	}
	var sum float64
	for s := 0; s < samples; s++ {
		tr := sys.Traces[rng.Intn(len(sys.Traces))]
		sum += tr.Samples[rng.Intn(len(tr.Samples))]
	}
	avg := sum / float64(samples)
	if avg <= 0 {
		avg = 1 // all-outage draw: assume a trickle
	}
	bw := make([]float64, sys.N())
	for i := range bw {
		bw[i] = avg
	}
	return NewStatic(sys, bw, minFrac)
}

// NewStaticFromWindow builds the Static baseline from the network as it
// looks when federated learning starts: each device's assumed bandwidth is
// its true trace average over [start, start+windowSec]. Because the plan
// never adapts afterwards, regime drift over a long run makes this estimate
// stale — the failure mode behind Static's poor showing in Fig. 7/8.
func NewStaticFromWindow(sys *fl.System, start, windowSec, minFrac float64) (*Static, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if windowSec <= 0 {
		return nil, fmt.Errorf("sched: window %v must be positive", windowSec)
	}
	bw := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		bw[i] = tr.Average(start, start+windowSec)
		if bw[i] <= 0 {
			bw[i] = 1 // an all-outage window: assume a trickle
		}
	}
	return NewStatic(sys, bw, minFrac)
}

// Name implements Scheduler.
func (*Static) Name() string { return "static" }

// Frequencies implements Scheduler.
func (s *Static) Frequencies(ctx Context) ([]float64, error) {
	if len(s.fixed) != ctx.Sys.N() {
		return nil, fmt.Errorf("sched: static plan for %d devices applied to %d", len(s.fixed), ctx.Sys.N())
	}
	return append([]float64(nil), s.fixed...), nil
}

// Heuristic is the baseline of Wang et al. [3]: at the start of each
// iteration the parameter server knows the bandwidths realized in the
// previous iteration and re-optimizes assuming they will persist.
type Heuristic struct {
	initialBW []float64
	minFrac   float64
}

// NewHeuristic builds the baseline; initialBW seeds the first iteration
// before any observation exists.
func NewHeuristic(initialBW []float64, minFrac float64) (*Heuristic, error) {
	if len(initialBW) == 0 {
		return nil, fmt.Errorf("sched: empty initial bandwidth estimate")
	}
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	return &Heuristic{initialBW: append([]float64(nil), initialBW...), minFrac: minFrac}, nil
}

// Name implements Scheduler.
func (*Heuristic) Name() string { return "heuristic" }

// Frequencies implements Scheduler.
func (h *Heuristic) Frequencies(ctx Context) ([]float64, error) {
	bw := ctx.LastBW
	if bw == nil {
		bw = h.initialBW
	} else if len(bw) == len(h.initialBW) {
		// Graceful degradation under faults: a device whose observation is
		// missing or corrupt (crashed before reporting, blacked-out upload)
		// falls back to the initial estimate instead of poisoning the plan.
		sanitized := false
		for i, b := range bw {
			if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
				if !sanitized {
					bw = append([]float64(nil), bw...)
					sanitized = true
				}
				bw[i] = h.initialBW[i]
			}
		}
	}
	return PlanFrequencies(ctx.Sys, bw, h.minFrac)
}

// Oracle cheats: it reads each device's true mean bandwidth over the next
// lookahead window and optimizes against it. It upper-bounds what any
// history-driven scheduler (including the DRL agent) can achieve.
type Oracle struct {
	MinFrac      float64
	LookaheadSec float64

	// bw is the reused lookahead-bandwidth scratch; schedulers are
	// per-run values, never shared across goroutines.
	bw []float64
}

// NewOracle constructs an Oracle with the given lookahead window.
func NewOracle(minFrac, lookaheadSec float64) (*Oracle, error) {
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	if lookaheadSec <= 0 {
		return nil, fmt.Errorf("sched: lookahead %v must be positive", lookaheadSec)
	}
	return &Oracle{MinFrac: minFrac, LookaheadSec: lookaheadSec}, nil
}

// Name implements Scheduler.
func (*Oracle) Name() string { return "oracle" }

// Frequencies implements Scheduler.
func (o *Oracle) Frequencies(ctx Context) ([]float64, error) {
	if cap(o.bw) < ctx.Sys.N() {
		o.bw = make([]float64, ctx.Sys.N())
	} else {
		o.bw = o.bw[:ctx.Sys.N()]
	}
	for i, tr := range ctx.Sys.Traces {
		o.bw[i] = tr.Average(ctx.Clock, ctx.Clock+o.LookaheadSec)
		if o.bw[i] <= 0 {
			o.bw[i] = 1 // degenerate outage window: assume a trickle
		}
	}
	return PlanFrequencies(ctx.Sys, o.bw, o.MinFrac)
}

// DRL wraps a trained actor network for online reasoning (§V-B2): it feeds
// the current bandwidth-history state into the policy and applies the mean
// action deterministically.
type DRL struct {
	Policy rl.Policy
	Cfg    env.Config
	// Norm, when set, standardizes states exactly as during training.
	Norm *rl.ObsNormalizer
	// F32 selects the float32 fleet-batched serving backend: the actor
	// weights are snapshotted once (rl.FleetActor) and every decision runs
	// one cache-blocked float32 matmul pass over the whole fleet. Actions
	// stay within 1e-4 of the float64 reference; training is untouched.
	// When the policy type has no float32 snapshot the DRL silently serves
	// float64 (Backend reports which path is live).
	F32 bool

	// Lazily built float32 snapshot and its sticky construction error.
	fleet    *rl.FleetActor
	fleetErr error
	tried    bool

	// f32Fallbacks counts decisions served on the float64 path while F32
	// was requested — the operator-visible trace of a degraded backend.
	// Atomic so metrics endpoints can read it while a serving goroutine
	// decides.
	f32Fallbacks atomic.Int64

	// Reusable serving buffers (normalized state, action mean).
	normBuf tensor.Vector
	actBuf  tensor.Vector
}

// meanIntoPolicy is the allocation-free batched serving entry point both
// float64 policies implement.
type meanIntoPolicy interface {
	MeanInto(dst, s tensor.Vector)
}

// NewDRL validates that the policy matches the environment layout it will
// be asked to act in.
func NewDRL(policy rl.Policy, cfg env.Config) (*DRL, error) {
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRL{Policy: policy, Cfg: cfg}, nil
}

// SwapPolicy hot-swaps the serving policy for one with identical
// dimensions — the online continual-learning promotion path. The float32
// fleet snapshot is invalidated and lazily rebuilt from the new weights.
// Callers must hold whatever lock serializes this DRL's decisions (it is
// single-run, like the guard).
func (d *DRL) SwapPolicy(p rl.Policy) error {
	if p == nil {
		return fmt.Errorf("sched: swap to nil policy")
	}
	if p.StateDim() != d.Policy.StateDim() || p.ActionDim() != d.Policy.ActionDim() {
		return fmt.Errorf("sched: swap policy dims (%d,%d) do not match serving dims (%d,%d)",
			p.StateDim(), p.ActionDim(), d.Policy.StateDim(), d.Policy.ActionDim())
	}
	d.Policy = p
	d.fleet, d.fleetErr, d.tried = nil, nil, false
	return nil
}

// Name implements Scheduler.
func (*DRL) Name() string { return "drl" }

// Frequencies implements Scheduler.
func (d *DRL) Frequencies(ctx Context) ([]float64, error) {
	state := env.BuildState(ctx.Sys, ctx.Clock, d.Cfg)
	// Mask crashed devices exactly as the training environment does, so
	// reasoning states under churn match what the policy was trained on.
	env.MaskState(state, ctx.Down, d.Cfg.History)
	return d.FrequenciesFromState(ctx, state)
}

// FrequenciesFromState applies the policy to a caller-built raw state
// vector (already masked, not yet normalized). The guard pipeline enters
// here so the actor acts on exactly the state its OOD layer inspected —
// including any injected corruption a chaos run simulates.
func (d *DRL) FrequenciesFromState(ctx Context, state tensor.Vector) ([]float64, error) {
	return d.FrequenciesFromStateInto(nil, ctx, state)
}

// FrequenciesFromStateInto is FrequenciesFromState with a caller-provided
// destination (grown if needed, allocated when nil). Together with the
// DRL's internal state/action buffers this makes the steady-state serving
// tick allocation-free on the batched backends.
func (d *DRL) FrequenciesFromStateInto(dst []float64, ctx Context, state tensor.Vector) ([]float64, error) {
	if len(state) != d.Policy.StateDim() {
		return nil, fmt.Errorf("sched: state dim %d but policy expects %d (trained on a different N or H?)",
			len(state), d.Policy.StateDim())
	}
	if d.Norm != nil {
		if d.Norm.Dim() != len(state) {
			return nil, fmt.Errorf("sched: normalizer dim %d but state dim %d", d.Norm.Dim(), len(state))
		}
		d.normBuf = ensureLen(d.normBuf, len(state))
		d.Norm.NormalizeInto(d.normBuf, state)
		state = d.normBuf
	}
	d.actBuf = ensureLen(d.actBuf, d.Policy.ActionDim())
	if fa := d.fleetActor(); fa != nil {
		fa.MeanInto(d.actBuf, state)
	} else if d.F32 {
		// The f32 backend was requested but is unavailable (sticky
		// construction error): serve float64 and count the fallback so a
		// degraded backend is visible to operators (see F32Err).
		d.f32Fallbacks.Add(1)
		if mp, ok := d.Policy.(meanIntoPolicy); ok {
			mp.MeanInto(d.actBuf, state)
		} else {
			copy(d.actBuf, d.Policy.Mean(state))
		}
	} else if mp, ok := d.Policy.(meanIntoPolicy); ok {
		mp.MeanInto(d.actBuf, state)
	} else {
		copy(d.actBuf, d.Policy.Mean(state))
	}
	return env.MapActionInto(dst, ctx.Sys, d.actBuf, d.Cfg.MinFreqFrac)
}

// fleetActor returns the float32 serving snapshot, building it on first
// use, or nil when f32 serving is off or unsupported for the policy type.
func (d *DRL) fleetActor() *rl.FleetActor {
	if !d.F32 {
		return nil
	}
	if !d.tried {
		d.tried = true
		d.fleet, d.fleetErr = rl.NewFleetActor(d.Policy)
	}
	if d.fleetErr != nil {
		return nil
	}
	return d.fleet
}

// Backend reports which serving backend a decision runs on: "f64" or the
// float32 fleet actor's kernel name (e.g. "f32-avx2"). Audit lines record
// this so a run's decisions can be attributed to the exact arithmetic that
// produced them.
func (d *DRL) Backend() string {
	if fa := d.fleetActor(); fa != nil {
		return fa.Backend()
	}
	return "f64"
}

// F32Err reports the sticky error that disabled the requested float32
// serving backend, or nil when f32 serving is off or healthy. The guard
// pipeline surfaces it as a one-shot audit event so a silently degraded
// backend cannot hide from the audit log.
func (d *DRL) F32Err() error {
	if !d.F32 {
		return nil
	}
	d.fleetActor() // force the lazy build so the verdict is in
	return d.fleetErr
}

// F32Fallbacks returns how many decisions were served on the float64 path
// while the float32 backend was requested — zero for a healthy backend.
// Safe to read concurrently with serving.
func (d *DRL) F32Fallbacks() int64 { return d.f32Fallbacks.Load() }

// ensureLen returns v resized to n, reusing its backing array when large
// enough.
func ensureLen(v tensor.Vector, n int) tensor.Vector {
	if cap(v) < n {
		return tensor.NewVector(n)
	}
	return v[:n]
}
