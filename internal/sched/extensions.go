package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/rl"
)

// StochasticDRL is the exploratory variant of the DRL scheduler: it samples
// actions from the policy distribution instead of applying the mean. The
// paper's online reasoning is deterministic (§V-B2); sampling is useful for
// continued on-line fine-tuning and for measuring how much the residual
// policy variance costs.
type StochasticDRL struct {
	Policy rl.Policy
	Cfg    env.Config
	Rng    *rand.Rand
}

// NewStochasticDRL validates the pieces.
func NewStochasticDRL(policy rl.Policy, cfg env.Config, rng *rand.Rand) (*StochasticDRL, error) {
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: nil rng")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &StochasticDRL{Policy: policy, Cfg: cfg, Rng: rng}, nil
}

// Name implements Scheduler.
func (*StochasticDRL) Name() string { return "drl-stochastic" }

// Frequencies implements Scheduler.
func (d *StochasticDRL) Frequencies(ctx Context) ([]float64, error) {
	state := env.BuildState(ctx.Sys, ctx.Clock, d.Cfg)
	if len(state) != d.Policy.StateDim() {
		return nil, fmt.Errorf("sched: state dim %d but policy expects %d", len(state), d.Policy.StateDim())
	}
	action, _ := d.Policy.Sample(state, d.Rng)
	return env.MapAction(ctx.Sys, action, d.Cfg.MinFreqFrac)
}

// DeadlineHeuristic is an alternative reading of the Wang et al. [3]
// baseline: rather than re-solving the full allocation, each device aims to
// finish exactly when the *previous* iteration ended — δ_i is set so
// t_cmp + t̂_com equals T^{k-1}, with t̂_com estimated from the previous
// iteration's bandwidth. It adapts like the planner-based Heuristic but
// drags a one-iteration-old deadline along, so it chases the network
// instead of anticipating it.
type DeadlineHeuristic struct {
	minFrac float64
	lastT   float64
	lastBW  []float64
}

// NewDeadlineHeuristic builds the baseline; the first iteration (with no
// observation) runs at full frequency.
func NewDeadlineHeuristic(minFrac float64) (*DeadlineHeuristic, error) {
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	return &DeadlineHeuristic{minFrac: minFrac}, nil
}

// Name implements Scheduler.
func (*DeadlineHeuristic) Name() string { return "deadline-heuristic" }

// Frequencies implements Scheduler.
func (h *DeadlineHeuristic) Frequencies(ctx Context) ([]float64, error) {
	n := ctx.Sys.N()
	fs := make([]float64, n)
	if ctx.LastBW == nil || h.lastT <= 0 {
		for i, d := range ctx.Sys.Devices {
			fs[i] = d.MaxFreqHz
		}
		return fs, nil
	}
	if len(ctx.LastBW) != n {
		return nil, fmt.Errorf("sched: %d observed bandwidths for %d devices", len(ctx.LastBW), n)
	}
	for i, d := range ctx.Sys.Devices {
		bw := ctx.LastBW[i]
		if bw <= 0 {
			fs[i] = d.MaxFreqHz
			continue
		}
		tcom := ctx.Sys.ModelBytes / bw
		slack := h.lastT - tcom
		var f float64
		if slack <= 0 {
			f = d.MaxFreqHz
		} else {
			f = d.Workload(ctx.Sys.Tau) / slack
		}
		fs[i] = d.ClampFreq(f, h.minFrac)
	}
	return fs, nil
}

// Observe feeds the realized duration of the completed iteration back into
// the deadline tracker. RunObserved calls it automatically.
func (h *DeadlineHeuristic) Observe(it fl.IterationStats) {
	h.lastT = it.Duration
}

// Observer is implemented by schedulers that want to see each iteration's
// outcome (beyond the LastBW snapshot the Context already carries) — the
// guard's cost-regression breaker closes its loop through this. Run and
// RunOpts honor it after every step, as does RunObserved.
type Observer interface {
	Observe(fl.IterationStats)
}

// RunObserved is sched.Run plus Observer feedback after every iteration.
func RunObserved(sys *fl.System, s Scheduler, startTime float64, iters int) ([]fl.IterationStats, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("sched: iteration count %d must be positive", iters)
	}
	ses, err := fl.NewSession(sys, startTime)
	if err != nil {
		return nil, err
	}
	obs, _ := s.(Observer)
	out := make([]fl.IterationStats, 0, iters)
	for k := 0; k < iters; k++ {
		ctx := Context{Sys: sys, Clock: ses.Clock, Iter: k, LastBW: ses.LastBandwidths()}
		freqs, err := s.Frequencies(ctx)
		if err != nil {
			return nil, fmt.Errorf("sched: %s at iteration %d: %w", s.Name(), k, err)
		}
		it, err := ses.Step(freqs)
		if err != nil {
			return nil, fmt.Errorf("sched: %s produced infeasible frequencies at iteration %d: %w", s.Name(), k, err)
		}
		if obs != nil {
			obs.Observe(it)
		}
		out = append(out, it)
	}
	return out, nil
}
