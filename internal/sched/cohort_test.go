package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/env"
	"repro/internal/hier"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// cohortState draws a plausible normalized region state.
func cohortState(rng *rand.Rand, dim int) []float64 {
	s := make([]float64, dim)
	for i := range s {
		s[i] = rng.Float64() * 2
	}
	return s
}

// TestCohortDRLServesValidFracs checks the f64 path end to end: fractions
// land in [MinFrac, 1] and the call validates its shapes.
func TestCohortDRLServesValidFracs(t *testing.T) {
	const regions, hist = 6, 5
	rng := rand.New(rand.NewSource(3))
	p := rl.NewGaussianPolicy(regions*(hist+1), regions, []int{16}, 0.3, rng)
	c, err := NewCohortDRL(p, 0.05)
	if err != nil {
		t.Fatalf("NewCohortDRL: %v", err)
	}
	state := cohortState(rng, p.StateDim())
	fracs := make([]float64, regions)
	if err := c.FracsInto(fracs, state); err != nil {
		t.Fatalf("FracsInto: %v", err)
	}
	for r, f := range fracs {
		if !(f >= 0.05) || f > 1 {
			t.Fatalf("region %d fraction %v outside [0.05, 1]", r, f)
		}
	}
	if got := c.Backend(); got != "f64" {
		t.Fatalf("Backend = %q, want f64", got)
	}
	if err := c.FracsInto(fracs, state[:3]); err == nil {
		t.Fatal("short state accepted")
	}
	if err := c.FracsInto(fracs[:2], state); err == nil {
		t.Fatal("short fraction buffer accepted")
	}
	if _, err := NewCohortDRL(nil, 0.05); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewCohortDRL(p, 1); err == nil {
		t.Fatal("minFrac 1 accepted")
	}
}

// TestCohortDRLF32MatchesF64 pins the float32 fleet-batched backend to the
// float64 reference within serving tolerance.
func TestCohortDRLF32MatchesF64(t *testing.T) {
	const regions, hist = 8, 5
	rng := rand.New(rand.NewSource(5))
	p := rl.NewGaussianPolicy(regions*(hist+1), regions, []int{32, 32}, 0.3, rng)

	ref, err := NewCohortDRL(p, 0.05)
	if err != nil {
		t.Fatalf("NewCohortDRL: %v", err)
	}
	f32, err := NewCohortDRL(p, 0.05)
	if err != nil {
		t.Fatalf("NewCohortDRL: %v", err)
	}
	f32.F32 = true

	want := make([]float64, regions)
	got := make([]float64, regions)
	for trial := 0; trial < 20; trial++ {
		state := cohortState(rng, p.StateDim())
		if err := ref.FracsInto(want, state); err != nil {
			t.Fatalf("f64 FracsInto: %v", err)
		}
		if err := f32.FracsInto(got, state); err != nil {
			t.Fatalf("f32 FracsInto: %v", err)
		}
		for r := range want {
			if d := math.Abs(got[r] - want[r]); d > 1e-4 {
				t.Fatalf("trial %d region %d: f32 %v vs f64 %v (Δ %v)", trial, r, got[r], want[r], d)
			}
		}
	}
	if f32.Backend() == "f64" {
		t.Fatalf("f32 backend not live: %v", f32.F32Err())
	}
	if n := f32.F32Fallbacks(); n != 0 {
		t.Fatalf("%d fallbacks on a healthy backend", n)
	}
}

// TestCohortDRLNormalizer checks the observation normalizer is applied
// before inference (a normalized state must produce a different action than
// the raw one when the statistics are non-trivial).
func TestCohortDRLNormalizer(t *testing.T) {
	const regions, hist = 4, 3
	rng := rand.New(rand.NewSource(7))
	p := rl.NewGaussianPolicy(regions*(hist+1), regions, []int{16}, 0.3, rng)
	norm := rl.NewObsNormalizer(p.StateDim(), 5)
	for i := 0; i < 50; i++ {
		norm.Update(tensor.Vector(cohortState(rng, p.StateDim())))
	}

	plain, _ := NewCohortDRL(p, 0.05)
	normed, _ := NewCohortDRL(p, 0.05)
	normed.Norm = norm

	state := cohortState(rng, p.StateDim())
	a := make([]float64, regions)
	b := make([]float64, regions)
	if err := plain.FracsInto(a, state); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if err := normed.FracsInto(b, state); err != nil {
		t.Fatalf("normed: %v", err)
	}
	same := true
	for r := range a {
		if a[r] != b[r] {
			same = false
		}
	}
	if same {
		t.Fatal("normalizer had no effect on the served fractions")
	}
}

// TestActorPlannerDrivesEngine wires CohortDRL into the hierarchical engine
// through hier.ActorPlanner — the full serving loop the experiments run.
func TestActorPlannerDrivesEngine(t *testing.T) {
	const (
		n       = 120
		regions = 4
		hist    = 5
	)
	fleet, err := hier.NewFleet(n, hier.FleetOptions{PoolSize: 8, TraceSec: 600}, 11)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	top, err := hier.EvenTopology(n, regions)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	eng, err := hier.NewEngine(fleet, top, hier.Config{
		Tau: 1, ModelBytes: 3e5, Lambda: 1e-3,
		CohortFrac: 0.5, MinArrivals: 3, Seed: 2,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewSource(13))
	policy := rl.NewGaussianPolicy(regions*(hist+1), regions, []int{16}, 0.3, rng)
	drl, err := NewCohortDRL(policy, 0.05)
	if err != nil {
		t.Fatalf("NewCohortDRL: %v", err)
	}
	drl.F32 = true
	planner, err := hier.NewActorPlanner(drl, hier.StateConfig{SlotSec: 10, History: hist, BWScale: 5e6})
	if err != nil {
		t.Fatalf("NewActorPlanner: %v", err)
	}
	for k := 0; k < 6; k++ {
		st, err := eng.StepInto(planner)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if st.Duration <= 0 || st.Cost <= 0 {
			t.Fatalf("step %d: degenerate stats %+v", k, st)
		}
	}
}

// TestMapFracsInto covers the action squash's edge cases.
func TestMapFracsInto(t *testing.T) {
	fracs, err := env.MapFracsInto(nil, tensor.Vector{-5, -1, 0, 1, 5}, 0.1)
	if err != nil {
		t.Fatalf("MapFracsInto: %v", err)
	}
	want := []float64{0.1, 0.1, 0.55, 1, 1}
	for i, f := range fracs {
		if math.Abs(f-want[i]) > 1e-12 {
			t.Fatalf("fracs[%d] = %v, want %v", i, f, want[i])
		}
	}
	if _, err := env.MapFracsInto(nil, tensor.Vector{math.NaN()}, 0.1); err == nil {
		t.Fatal("NaN action accepted")
	}
	if _, err := env.MapFracsInto(nil, tensor.Vector{0}, 0); err == nil {
		t.Fatal("minFrac 0 accepted")
	}
	// Buffer reuse: an adequate dst must come back with the same backing.
	buf := make([]float64, 3)
	out, err := env.MapFracsInto(buf, tensor.Vector{0, 0, 0}, 0.2)
	if err != nil {
		t.Fatalf("MapFracsInto: %v", err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("adequate buffer was reallocated")
	}
}
