package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/testutil"
)

func TestFullParticipation(t *testing.T) {
	sys := constSystem([]float64{1e6, 2e6, 3e6})
	mask, err := (FullParticipation{}).Select(Context{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mask {
		if !p {
			t.Fatalf("device %d excluded", i)
		}
	}
	if (FullParticipation{}).Name() != "full" {
		t.Fatal("name")
	}
}

func TestRandomFraction(t *testing.T) {
	sys := constSystem([]float64{1e6, 1e6, 1e6, 1e6, 1e6})
	r, err := NewRandomFraction(0.4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for trial := 0; trial < 30; trial++ {
		mask, err := r.Select(Context{Sys: sys})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for i, p := range mask {
			if p {
				count++
				seen[i] = true
			}
		}
		if count != 2 { // ⌈0.4·5⌉
			t.Fatalf("selected %d of 5 at C=0.4", count)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("selection never rotated: %v", seen)
	}
	if _, err := NewRandomFraction(0, nil); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := NewRandomFraction(1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("C>1 accepted")
	}
	if _, err := NewRandomFraction(0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestDeadlineSelectorExcludesStragglers(t *testing.T) {
	// Device 2 has a 1 MB/s link: upload alone takes 25 s. A 20 s deadline
	// must exclude it while keeping the fast devices.
	sys := constSystem([]float64{8e6, 8e6, 1e6})
	sel, err := NewDeadlineSelector(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := sel.Select(Context{Sys: sys, LastBW: []float64{8e6, 8e6, 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	if mask[2] {
		t.Fatal("straggler admitted past the deadline")
	}
	if !mask[0] || !mask[1] {
		t.Fatal("fast devices excluded")
	}
	// An impossible deadline still admits MinClients.
	tight, _ := NewDeadlineSelector(0.001, 2)
	mask2, err := tight.Select(Context{Sys: sys, LastBW: []float64{8e6, 8e6, 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fl.Participants(mask2)); got != 2 {
		t.Fatalf("min-clients floor broken: %d", got)
	}
	if _, err := NewDeadlineSelector(0, 1); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := NewDeadlineSelector(10, 0); err == nil {
		t.Fatal("zero min clients accepted")
	}
}

func TestRunWithSelectionSpeedsRounds(t *testing.T) {
	// Excluding the slow-link device must shorten rounds vs full
	// participation at the same frequencies.
	sys := constSystem([]float64{8e6, 8e6, 0.5e6})
	sel, _ := NewDeadlineSelector(25, 1)
	rounds, err := RunWithSelection(sys, MaxFreq{}, sel, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunWithSelection(sys, MaxFreq{}, FullParticipation{}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sSel, sFull := Summarize(rounds), Summarize(full)
	if sSel.MeanTime >= sFull.MeanTime {
		t.Fatalf("selection did not speed rounds: %v vs %v", sSel.MeanTime, sFull.MeanTime)
	}
	if sSel.MeanParticipants >= sFull.MeanParticipants {
		t.Fatalf("selection did not shrink rounds: %v vs %v", sSel.MeanParticipants, sFull.MeanParticipants)
	}
	if sFull.MeanParticipants != 3 {
		t.Fatalf("full participation = %v", sFull.MeanParticipants)
	}
	if sSel.UpdatesPerSecond <= 0 || sFull.UpdatesPerSecond <= 0 {
		t.Fatal("update rates must be positive")
	}
	if _, err := RunWithSelection(sys, MaxFreq{}, sel, 0, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.MeanCost != 0 || s.UpdatesPerSecond != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSubsetIterationSemantics(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	freqs := make([]float64, 3)
	for i, d := range sys.Devices {
		freqs[i] = d.MaxFreqHz
	}
	mask := []bool{true, false, true}
	it, err := sys.RunIterationSubset(0, 0, freqs, mask)
	if err != nil {
		t.Fatal(err)
	}
	// The excluded device contributes nothing.
	if it.Devices[1].ComputeEnergy != 0 || it.Devices[1].TotalTime != 0 {
		t.Fatalf("excluded device has activity: %+v", it.Devices[1])
	}
	// Barrier ranges over participants only.
	want := math.Max(it.Devices[0].TotalTime, it.Devices[2].TotalTime)
	testutil.AssertWithin(t, "duration", it.Duration, want, 1e-9)
	// Errors: empty mask, bad lengths, bad frequency for a participant.
	if _, err := sys.RunIterationSubset(0, 0, freqs, []bool{false, false, false}); err == nil {
		t.Fatal("empty participation accepted")
	}
	if _, err := sys.RunIterationSubset(0, 0, freqs, []bool{true}); err == nil {
		t.Fatal("short mask accepted")
	}
	bad := append([]float64(nil), freqs...)
	bad[0] = 0
	if _, err := sys.RunIterationSubset(0, 0, bad, mask); err == nil {
		t.Fatal("zero frequency for participant accepted")
	}
	// Non-participant frequency is ignored even if invalid.
	bad2 := append([]float64(nil), freqs...)
	bad2[1] = 0
	if _, err := sys.RunIterationSubset(0, 0, bad2, mask); err != nil {
		t.Fatalf("non-participant frequency should be ignored: %v", err)
	}
	if got := fl.Participants(mask); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("participants = %v", got)
	}
}
