package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/env"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/rl"
)

func faultOpts(t *testing.T, n int, seed int64) fl.IterOptions {
	t.Helper()
	sched, err := fault.NewSchedule(fault.Config{
		CrashProb: 0.2, RejoinProb: 0.5, BlackoutProb: 0.2, StragglerProb: 0.1,
	}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return fl.IterOptions{Deadline: 600, Faults: sched}
}

// Zero options through RunOpts must match Run bit-for-bit.
func TestRunOptsZeroMatchesRun(t *testing.T) {
	sys := dynamicSystem(3, 7)
	plain, err := Run(sys, MaxFreq{}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	opted, err := RunOpts(sys, MaxFreq{}, 0, 20, fl.IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, opted) {
		t.Fatal("zero IterOptions changed the run")
	}
}

// Every baseline must complete a faulty run — devices crashing mid-run must
// not crash the scheduler.
func TestBaselinesDegradeGracefully(t *testing.T) {
	sys := dynamicSystem(4, 3)
	minFrac := 0.05
	heur, err := NewHeuristic([]float64{2e6, 2e6, 2e6, 2e6}, minFrac)
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewStaticFromWindow(sys, 0, 60, minFrac)
	if err != nil {
		t.Fatal(err)
	}
	random, err := NewRandom(minFrac, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{MaxFreq{}, heur, static, random} {
		its, err := RunOpts(sys, s, 0, 50, faultOpts(t, sys.N(), 17))
		if err != nil {
			t.Fatalf("%s under faults: %v", s.Name(), err)
		}
		surv := Survivors(its)
		churn := false
		for _, v := range surv {
			if v < sys.N() {
				churn = true
			}
			if v < 0 || v > sys.N() {
				t.Fatalf("%s: survivor count %d out of range", s.Name(), v)
			}
		}
		if !churn {
			t.Fatalf("%s: fault schedule inert over 50 iterations", s.Name())
		}
	}
}

func TestFaultyRunDeterminism(t *testing.T) {
	sys := dynamicSystem(3, 9)
	heur, err := NewHeuristic([]float64{2e6, 2e6, 2e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOpts(sys, heur, 10, 40, faultOpts(t, 3, 23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpts(sys, heur, 10, 40, faultOpts(t, 3, 23))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fault seed produced different runs")
	}
}

// A poisoned LastBW entry (NaN/zero from a device that vanished) must fall
// back to the initial estimate instead of erroring out of PlanFrequencies.
func TestHeuristicSanitizesMissingObservations(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	heur, err := NewHeuristic([]float64{4e6, 3e6, 2e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Sys: sys, Clock: 0, Iter: 1, LastBW: []float64{5e6, math.NaN(), 0}}
	fs, err := heur.Frequencies(ctx)
	if err != nil {
		t.Fatalf("heuristic died on corrupt observations: %v", err)
	}
	// The sanitized plan must equal planning against the patched vector.
	want, err := PlanFrequencies(sys, []float64{5e6, 3e6, 2e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, want) {
		t.Fatalf("sanitized plan %v, want %v", fs, want)
	}
	// The caller's slice must not have been mutated.
	if !math.IsNaN(ctx.LastBW[1]) || ctx.LastBW[2] != 0 {
		t.Fatal("heuristic mutated the caller's LastBW")
	}
}

// The DRL scheduler must mask crashed devices exactly like the training
// environment, and complete a faulty run.
func TestDRLMasksDownDevices(t *testing.T) {
	sys := dynamicSystem(3, 5)
	cfg := env.DefaultConfig()
	policy := rl.NewGaussianPolicy(sys.N()*(cfg.History+1), sys.N(), []int{8}, 0.1, rand.New(rand.NewSource(1)))
	drl, err := NewDRL(policy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Context{Sys: sys, Clock: 100, Iter: 0}
	fsUp, err := drl.Frequencies(base)
	if err != nil {
		t.Fatal(err)
	}
	masked := base
	masked.Down = []bool{false, true, false}
	fsDown, err := drl.Frequencies(masked)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fsUp, fsDown) {
		t.Fatal("down mask did not change the DRL state/action")
	}
	// And a full faulty run completes.
	if _, err := RunOpts(sys, drl, 0, 30, faultOpts(t, 3, 31)); err != nil {
		t.Fatalf("DRL under faults: %v", err)
	}
}
