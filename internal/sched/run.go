package sched

import (
	"fmt"

	"repro/internal/fl"
)

// Run drives a scheduler through `iters` synchronous FL iterations starting
// at the given wall-clock time and returns the per-iteration statistics —
// the online-reasoning loop behind Figures 7 and 8. It is the fault-free
// special case of RunOpts.
func Run(sys *fl.System, s Scheduler, startTime float64, iters int) ([]fl.IterationStats, error) {
	return RunOpts(sys, s, startTime, iters, fl.IterOptions{})
}

// RunOpts drives a scheduler under fault-tolerance options: the session
// applies the deadline/retry/fault semantics of fl.RunIterationOpts and
// each scheduler sees the crashed-device mask in its Context. With the zero
// options it is bit-identical to Run.
func RunOpts(sys *fl.System, s Scheduler, startTime float64, iters int, opts fl.IterOptions) ([]fl.IterationStats, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("sched: iteration count %d must be positive", iters)
	}
	ses, err := fl.NewSession(sys, startTime)
	if err != nil {
		return nil, err
	}
	ses.Opts = opts
	out := make([]fl.IterationStats, 0, iters)
	for k := 0; k < iters; k++ {
		ctx := Context{
			Sys:    sys,
			Clock:  ses.Clock,
			Iter:   k,
			LastBW: ses.LastBandwidths(),
		}
		if opts.Faults != nil {
			ctx.Down = opts.Faults.Down(k)
		}
		freqs, err := s.Frequencies(ctx)
		if err != nil {
			return nil, fmt.Errorf("sched: %s at iteration %d: %w", s.Name(), k, err)
		}
		it, err := ses.Step(freqs)
		if err != nil {
			return nil, fmt.Errorf("sched: %s produced infeasible frequencies at iteration %d: %w", s.Name(), k, err)
		}
		if ob, ok := s.(Observer); ok {
			ob.Observe(it)
		}
		out = append(out, it)
	}
	return out, nil
}

// Survivors extracts the per-iteration survivor counts from run output.
func Survivors(its []fl.IterationStats) []int {
	out := make([]int, len(its))
	for i, it := range its {
		out[i] = it.Survivors
	}
	return out
}

// Costs extracts the per-iteration system cost series from run output.
func Costs(its []fl.IterationStats) []float64 {
	out := make([]float64, len(its))
	for i, it := range its {
		out[i] = it.Cost
	}
	return out
}

// Durations extracts the per-iteration training time series T^k.
func Durations(its []fl.IterationStats) []float64 {
	out := make([]float64, len(its))
	for i, it := range its {
		out[i] = it.Duration
	}
	return out
}

// ComputeEnergies extracts the per-iteration computational-energy series,
// the metric of Fig. 7(c)/(f).
func ComputeEnergies(its []fl.IterationStats) []float64 {
	out := make([]float64, len(its))
	for i, it := range its {
		out[i] = it.ComputeEnergy
	}
	return out
}
