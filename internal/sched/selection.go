package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fl"
	"repro/internal/stats"
)

// Selector chooses which devices participate in the upcoming iteration —
// the client-selection axis of Nishio & Yonetani [38] (cited in §VI),
// orthogonal to the paper's frequency control. A Selector composes with any
// Scheduler: the scheduler still picks frequencies for everyone, the
// selector masks who actually runs.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select returns one participation flag per device; at least one must
	// be true.
	Select(ctx Context) ([]bool, error)
}

// FullParticipation selects every device — the paper's setting.
type FullParticipation struct{}

// Name implements Selector.
func (FullParticipation) Name() string { return "full" }

// Select implements Selector.
func (FullParticipation) Select(ctx Context) ([]bool, error) {
	mask := make([]bool, ctx.Sys.N())
	for i := range mask {
		mask[i] = true
	}
	return mask, nil
}

// RandomFraction selects each round a uniformly random subset of size
// ⌈C·N⌉ — the client fraction of McMahan et al.'s FedAvg.
type RandomFraction struct {
	C   float64
	Rng *rand.Rand
}

// NewRandomFraction validates the fraction C ∈ (0, 1].
func NewRandomFraction(c float64, rng *rand.Rand) (*RandomFraction, error) {
	if c <= 0 || c > 1 {
		return nil, fmt.Errorf("sched: client fraction %v outside (0,1]", c)
	}
	if rng == nil {
		return nil, fmt.Errorf("sched: nil rng")
	}
	return &RandomFraction{C: c, Rng: rng}, nil
}

// Name implements Selector.
func (*RandomFraction) Name() string { return "random-fraction" }

// Select implements Selector.
func (r *RandomFraction) Select(ctx Context) ([]bool, error) {
	n := ctx.Sys.N()
	k := int(float64(n)*r.C + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := r.Rng.Perm(n)
	mask := make([]bool, n)
	for _, i := range perm[:k] {
		mask[i] = true
	}
	return mask, nil
}

// DeadlineSelector is the FedCS-style policy of [38]: given a round
// deadline, admit the devices estimated to finish within it (estimating
// each device's time from its max frequency and its last observed — or
// long-run mean — bandwidth), always keeping at least MinClients so the
// round can proceed.
type DeadlineSelector struct {
	// Deadline is the target round duration in seconds.
	Deadline float64
	// MinClients floors the selection size.
	MinClients int
}

// NewDeadlineSelector validates the parameters.
func NewDeadlineSelector(deadline float64, minClients int) (*DeadlineSelector, error) {
	if deadline <= 0 {
		return nil, fmt.Errorf("sched: deadline %v must be positive", deadline)
	}
	if minClients < 1 {
		return nil, fmt.Errorf("sched: min clients %d must be at least 1", minClients)
	}
	return &DeadlineSelector{Deadline: deadline, MinClients: minClients}, nil
}

// Name implements Selector.
func (*DeadlineSelector) Name() string { return "deadline" }

// Select implements Selector.
func (d *DeadlineSelector) Select(ctx Context) ([]bool, error) {
	n := ctx.Sys.N()
	type est struct {
		dev  int
		time float64
	}
	ests := make([]est, n)
	for i, dev := range ctx.Sys.Devices {
		bw := 0.0
		if ctx.LastBW != nil && i < len(ctx.LastBW) {
			bw = ctx.LastBW[i]
		}
		if bw <= 0 {
			bw = ctx.Sys.Traces[i].Summary().Mean
		}
		if bw <= 0 {
			bw = 1
		}
		ests[i] = est{dev: i, time: dev.Workload(ctx.Sys.Tau)/dev.MaxFreqHz + ctx.Sys.ModelBytes/bw}
	}
	sort.Slice(ests, func(a, b int) bool { return ests[a].time < ests[b].time })
	mask := make([]bool, n)
	admitted := 0
	for _, e := range ests {
		if e.time <= d.Deadline || admitted < d.MinClients {
			mask[e.dev] = true
			admitted++
		}
	}
	return mask, nil
}

// SelectionRound is one iteration's outcome under selection.
type SelectionRound struct {
	Iter         fl.IterationStats
	Participants int
}

// RunWithSelection drives a scheduler and a selector together for `iters`
// rounds and returns both the iteration stats and participation counts.
func RunWithSelection(sys *fl.System, s Scheduler, sel Selector, startTime float64, iters int) ([]SelectionRound, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("sched: iteration count %d must be positive", iters)
	}
	ses, err := fl.NewSession(sys, startTime)
	if err != nil {
		return nil, err
	}
	out := make([]SelectionRound, 0, iters)
	for k := 0; k < iters; k++ {
		ctx := Context{Sys: sys, Clock: ses.Clock, Iter: k, LastBW: ses.LastBandwidths()}
		mask, err := sel.Select(ctx)
		if err != nil {
			return nil, fmt.Errorf("sched: selector %s at iteration %d: %w", sel.Name(), k, err)
		}
		freqs, err := s.Frequencies(ctx)
		if err != nil {
			return nil, fmt.Errorf("sched: %s at iteration %d: %w", s.Name(), k, err)
		}
		it, err := ses.StepSubset(freqs, mask)
		if err != nil {
			return nil, err
		}
		out = append(out, SelectionRound{Iter: it, Participants: len(fl.Participants(mask))})
	}
	return out, nil
}

// SelectionSummary aggregates a RunWithSelection trace.
type SelectionSummary struct {
	// MeanCost, MeanTime, MeanEnergy mirror the scheduler comparisons.
	MeanCost, MeanTime, MeanEnergy float64
	// MeanParticipants is the average round size.
	MeanParticipants float64
	// UpdatesPerSecond is total participant-updates over total wall-clock:
	// selection trades per-round breadth for round speed.
	UpdatesPerSecond float64
}

// Summarize reduces selection rounds to the summary metrics.
func Summarize(rounds []SelectionRound) SelectionSummary {
	if len(rounds) == 0 {
		return SelectionSummary{}
	}
	var costs, times, energies, parts []float64
	var updates, elapsed float64
	for _, r := range rounds {
		costs = append(costs, r.Iter.Cost)
		times = append(times, r.Iter.Duration)
		energies = append(energies, r.Iter.ComputeEnergy)
		parts = append(parts, float64(r.Participants))
		updates += float64(r.Participants)
		elapsed += r.Iter.Duration
	}
	sum := SelectionSummary{
		MeanCost:         stats.Mean(costs),
		MeanTime:         stats.Mean(times),
		MeanEnergy:       stats.Mean(energies),
		MeanParticipants: stats.Mean(parts),
	}
	if elapsed > 0 {
		sum.UpdatesPerSecond = updates / elapsed
	}
	return sum
}
