package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/rl"
	"repro/internal/stats"
	"repro/internal/testutil"
)

func TestStochasticDRLConstruction(t *testing.T) {
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	policy := rl.NewGaussianPolicy(3*(cfg.History+1), 3, []int{8}, 0.5, rng)
	if _, err := NewStochasticDRL(nil, cfg, rng); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewStochasticDRL(policy, cfg, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := cfg
	bad.SlotSec = 0
	if _, err := NewStochasticDRL(policy, bad, rng); err == nil {
		t.Fatal("bad config accepted")
	}
	s, err := NewStochasticDRL(policy, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "drl-stochastic" {
		t.Fatal("name")
	}
}

func TestStochasticDRLVariesDecisions(t *testing.T) {
	sys := dynamicSystem(3, 5)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	policy := rl.NewGaussianPolicy(3*(cfg.History+1), 3, []int{8}, 0.5, rng)
	s, err := NewStochasticDRL(policy, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Sys: sys, Clock: 100}
	a, err := s.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] <= 0 || a[i] > sys.Devices[i].MaxFreqHz+1 {
			t.Fatalf("infeasible frequency %v", a[i])
		}
	}
	if same {
		t.Fatal("stochastic scheduler repeated itself exactly")
	}
	// State-dim mismatch is surfaced.
	small := rl.NewGaussianPolicy(2, 3, []int{4}, 0.5, rng)
	s2, _ := NewStochasticDRL(small, cfg, rng)
	if _, err := s2.Frequencies(ctx); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestStochasticNearDeterministicWhenStdTiny(t *testing.T) {
	sys := dynamicSystem(2, 6)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	policy := rl.NewGaussianPolicy(2*(cfg.History+1), 2, []int{8}, 0.5, rng)
	policy.LogStd.Fill(math.Log(1e-9))
	det, _ := NewDRL(policy, cfg)
	sto, _ := NewStochasticDRL(policy, cfg, rng)
	ctx := Context{Sys: sys, Clock: 50}
	a, _ := det.Frequencies(ctx)
	b, _ := sto.Frequencies(ctx)
	for i := range a {
		if !testutil.Within(b[i], a[i], 100) {
			t.Fatalf("σ→0 stochastic should match deterministic: %v vs %v", a[i], b[i])
		}
	}
}

func TestDeadlineHeuristicFirstIterationMax(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6})
	h, err := NewDeadlineHeuristic(0.05)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := h.Frequencies(Context{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sys.Devices {
		if fs[i] != d.MaxFreqHz {
			t.Fatalf("first iteration should run at max, got %v", fs[i])
		}
	}
	if _, err := NewDeadlineHeuristic(0); err == nil {
		t.Fatal("bad minFrac accepted")
	}
}

func TestDeadlineHeuristicTracksDeadline(t *testing.T) {
	// On a constant network the deadline heuristic settles: after iteration
	// 1 every device targets T^0, so no device should exceed it much and
	// energy should drop below run-at-max.
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	h, _ := NewDeadlineHeuristic(0.05)
	its, err := RunObserved(sys, h, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	t0 := its[0].Duration
	for k, it := range its[1:] {
		if it.Duration > t0*1.05 {
			t.Fatalf("iteration %d duration %v overshot the tracked deadline %v", k+1, it.Duration, t0)
		}
	}
	maxIts, _ := Run(sys, MaxFreq{}, 0, 6)
	if stats.Mean(ComputeEnergies(its[1:])) >= stats.Mean(ComputeEnergies(maxIts[1:])) {
		t.Fatal("deadline heuristic saved no energy over run-at-max")
	}
}

func TestDeadlineHeuristicBadBandwidth(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6})
	h, _ := NewDeadlineHeuristic(0.05)
	h.Observe(fl.IterationStats{Duration: 10})
	// Zero observed bandwidth falls back to full speed for that device.
	fs, err := h.Frequencies(Context{Sys: sys, LastBW: []float64{0, 2e6}})
	if err != nil {
		t.Fatal(err)
	}
	if fs[0] != sys.Devices[0].MaxFreqHz {
		t.Fatalf("zero-bandwidth device should run at max, got %v", fs[0])
	}
	if _, err := h.Frequencies(Context{Sys: sys, LastBW: []float64{1e6}}); err == nil {
		t.Fatal("bandwidth count mismatch accepted")
	}
}

func TestRunObservedMatchesRunForStatelessSchedulers(t *testing.T) {
	sys := dynamicSystem(2, 7)
	a, err := Run(sys, MaxFreq{}, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunObserved(sys, MaxFreq{}, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k].Cost != b[k].Cost {
			t.Fatalf("iteration %d differs: %v vs %v", k, a[k].Cost, b[k].Cost)
		}
	}
	if _, err := RunObserved(sys, MaxFreq{}, 0, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}
