package sched

import (
	"fmt"
	"sync/atomic"

	"repro/internal/env"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// CohortDRL serves region-level frequency fractions for the hierarchical
// engine: the policy maps the region-level bandwidth state (R·(H+1) values)
// to one raw action per region, and env.MapFracsInto squashes it onto
// [MinFrac, 1]. It implements hier.FracPolicy. Like DRL, it can serve on
// the float32 fleet-batched backend — one cache-blocked inference pass
// prices every region of a million-device fleet — with a sticky-error
// fallback to float64.
type CohortDRL struct {
	Policy rl.Policy
	// Norm, when set, standardizes states exactly as during training.
	Norm *rl.ObsNormalizer
	// MinFrac is the fraction floor in (0,1).
	MinFrac float64
	// F32 selects the float32 fleet-batched serving backend (see DRL.F32).
	F32 bool

	// Lazily built float32 snapshot and its sticky construction error.
	fleet    *rl.FleetActor
	fleetErr error
	tried    bool

	// f32Fallbacks counts decisions served on the float64 path while F32
	// was requested.
	f32Fallbacks atomic.Int64

	// Reusable serving buffers (normalized state, action mean).
	normBuf tensor.Vector
	actBuf  tensor.Vector
}

// NewCohortDRL validates the pairing.
func NewCohortDRL(policy rl.Policy, minFrac float64) (*CohortDRL, error) {
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("sched: min frequency fraction %v outside (0,1)", minFrac)
	}
	return &CohortDRL{Policy: policy, MinFrac: minFrac}, nil
}

// Name implements hier.FracPolicy.
func (c *CohortDRL) Name() string { return "cohort-drl" }

// FracsInto implements hier.FracPolicy: one inference pass over the
// region-level state fills dst (length ActionDim) with fractions in
// [MinFrac, 1]. Steady-state calls allocate nothing on the batched
// backends.
func (c *CohortDRL) FracsInto(dst []float64, state []float64) error {
	s := tensor.Vector(state)
	if len(s) != c.Policy.StateDim() {
		return fmt.Errorf("sched: state dim %d but policy expects %d (trained on a different region count or H?)",
			len(s), c.Policy.StateDim())
	}
	if len(dst) != c.Policy.ActionDim() {
		return fmt.Errorf("sched: %d fraction slots but policy acts on %d regions", len(dst), c.Policy.ActionDim())
	}
	if c.Norm != nil {
		if c.Norm.Dim() != len(s) {
			return fmt.Errorf("sched: normalizer dim %d but state dim %d", c.Norm.Dim(), len(s))
		}
		c.normBuf = ensureLen(c.normBuf, len(s))
		c.Norm.NormalizeInto(c.normBuf, s)
		s = c.normBuf
	}
	c.actBuf = ensureLen(c.actBuf, c.Policy.ActionDim())
	if fa := c.fleetActor(); fa != nil {
		fa.MeanInto(c.actBuf, s)
	} else if c.F32 {
		// Requested f32 backend unavailable (sticky construction error):
		// serve float64 and count the fallback so degradation is visible.
		c.f32Fallbacks.Add(1)
		c.meanF64(s)
	} else {
		c.meanF64(s)
	}
	_, err := env.MapFracsInto(dst, c.actBuf, c.MinFrac)
	return err
}

// meanF64 computes μ(s) on the float64 path into actBuf.
func (c *CohortDRL) meanF64(s tensor.Vector) {
	if mp, ok := c.Policy.(meanIntoPolicy); ok {
		mp.MeanInto(c.actBuf, s)
	} else {
		copy(c.actBuf, c.Policy.Mean(s))
	}
}

// fleetActor returns the float32 serving snapshot, building it on first
// use, or nil when f32 serving is off or unsupported for the policy type.
func (c *CohortDRL) fleetActor() *rl.FleetActor {
	if !c.F32 {
		return nil
	}
	if !c.tried {
		c.tried = true
		c.fleet, c.fleetErr = rl.NewFleetActor(c.Policy)
	}
	if c.fleetErr != nil {
		return nil
	}
	return c.fleet
}

// Backend reports which serving backend a decision runs on ("f64" or the
// float32 kernel name).
func (c *CohortDRL) Backend() string {
	if fa := c.fleetActor(); fa != nil {
		return fa.Backend()
	}
	return "f64"
}

// F32Err reports the sticky error that disabled the requested float32
// backend, or nil when f32 serving is off or healthy.
func (c *CohortDRL) F32Err() error {
	if !c.F32 {
		return nil
	}
	c.fleetActor()
	return c.fleetErr
}

// F32Fallbacks returns how many decisions were served on the float64 path
// while the float32 backend was requested. Safe to read concurrently.
func (c *CohortDRL) F32Fallbacks() int64 { return c.f32Fallbacks.Load() }
