package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/rl"
	"repro/internal/stats"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// constSystem builds a system on constant-bandwidth traces so the planner's
// assumptions hold exactly.
func constSystem(bws []float64) *fl.System {
	devs := device.MustNewFleet(len(bws), device.FleetParams{}, 11)
	traces := make([]*trace.Trace, len(bws))
	for i, b := range bws {
		traces[i] = trace.MustNew("c", 1, []float64{b})
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

// dynamicSystem builds a system on regime-switching walking traces.
func dynamicSystem(n int, seed int64) *fl.System {
	devs := device.MustNewFleet(n, device.FleetParams{}, seed)
	p := bandwidth.Walking4G()
	traces := make([]*trace.Trace, n)
	for i := range traces {
		traces[i] = p.MustGenerate("w", 2000, seed+int64(i)*31)
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

func TestPlanFrequenciesFeasible(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	fs, err := PlanFrequencies(sys, []float64{5e6, 2e6, 1e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sys.Devices {
		if fs[i] <= 0 || fs[i] > d.MaxFreqHz {
			t.Fatalf("freq %d = %v infeasible", i, fs[i])
		}
	}
}

func TestPlanBeatsMaxFreqOnKnownBandwidth(t *testing.T) {
	// With the bandwidth known exactly, the planner's cost must not exceed
	// the run-at-max cost.
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	bw := []float64{5e6, 2e6, 1e6}
	planned, err := PlanFrequencies(sys, bw, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	itPlan, err := sys.RunIteration(0, 0, planned)
	if err != nil {
		t.Fatal(err)
	}
	maxFs, _ := MaxFreq{}.Frequencies(Context{Sys: sys})
	itMax, err := sys.RunIteration(0, 0, maxFs)
	if err != nil {
		t.Fatal(err)
	}
	if itPlan.Cost > itMax.Cost+1e-9 {
		t.Fatalf("planned cost %v > maxfreq cost %v", itPlan.Cost, itMax.Cost)
	}
	// And it should strictly save energy by slowing non-critical devices.
	if itPlan.ComputeEnergy >= itMax.ComputeEnergy {
		t.Fatalf("planned energy %v ≥ maxfreq energy %v", itPlan.ComputeEnergy, itMax.ComputeEnergy)
	}
}

func TestPlanStragglerGetsRelativelyMoreFrequency(t *testing.T) {
	// The device with the slowest link must not be slowed more aggressively
	// (relative to its δmax) than the best-connected device.
	sys := constSystem([]float64{8e6, 8e6, 0.3e6})
	fs, err := PlanFrequencies(sys, []float64{8e6, 8e6, 0.3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fracFast := fs[0] / sys.Devices[0].MaxFreqHz
	fracSlow := fs[2] / sys.Devices[2].MaxFreqHz
	if fracSlow < fracFast-1e-9 {
		t.Fatalf("straggler frac %v < fast device frac %v", fracSlow, fracFast)
	}
}

func TestPlanFrequenciesErrors(t *testing.T) {
	sys := constSystem([]float64{1e6, 1e6})
	if _, err := PlanFrequencies(sys, []float64{1e6}, 0.05); err == nil {
		t.Fatal("bandwidth count mismatch accepted")
	}
	if _, err := PlanFrequencies(sys, []float64{1e6, 0}, 0.05); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := PlanFrequencies(sys, []float64{1e6, math.NaN()}, 0.05); err == nil {
		t.Fatal("NaN bandwidth accepted")
	}
	if _, err := PlanFrequencies(sys, []float64{1e6, 1e6}, 0); err == nil {
		t.Fatal("bad minFrac accepted")
	}
	sys.Tau = 0
	if _, err := PlanFrequencies(sys, []float64{1e6, 1e6}, 0.05); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestMaxFreqScheduler(t *testing.T) {
	sys := constSystem([]float64{1e6, 2e6})
	fs, err := MaxFreq{}.Frequencies(Context{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sys.Devices {
		if fs[i] != d.MaxFreqHz {
			t.Fatalf("maxfreq[%d] = %v", i, fs[i])
		}
	}
	if (MaxFreq{}).Name() != "maxfreq" {
		t.Fatal("name")
	}
}

func TestRandomScheduler(t *testing.T) {
	sys := constSystem([]float64{1e6, 2e6, 3e6})
	r, err := NewRandom(0.2, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		fs, err := r.Frequencies(Context{Sys: sys})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range sys.Devices {
			if fs[i] < 0.2*d.MaxFreqHz-1e-9 || fs[i] > d.MaxFreqHz+1e-9 {
				t.Fatalf("random freq %v outside bounds", fs[i])
			}
		}
	}
	if _, err := NewRandom(0, nil); err == nil {
		t.Fatal("bad args accepted")
	}
	if _, err := NewRandom(0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestStaticIsConstant(t *testing.T) {
	sys := dynamicSystem(3, 5)
	st, err := NewStatic(sys, []float64{3e6, 3e6, 3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	its, err := Run(sys, st, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same frequencies every iteration ⇒ identical computational energy —
	// the paper's Fig. 7(f) observation that static energy is exactly 1.62.
	e0 := its[0].ComputeEnergy
	for k, it := range its {
		if !testutil.Within(it.ComputeEnergy, e0, 1e-9) {
			t.Fatalf("static energy varies at iteration %d: %v vs %v", k, it.ComputeEnergy, e0)
		}
	}
	// Mismatched fleet is rejected.
	other := constSystem([]float64{1e6})
	if _, err := st.Frequencies(Context{Sys: other}); err == nil {
		t.Fatal("static plan applied to wrong fleet")
	}
}

func TestHeuristicUsesLastBandwidth(t *testing.T) {
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	h, err := NewHeuristic([]float64{3e6, 3e6, 3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// First call (no observation) uses the initial estimate.
	first, err := h.Frequencies(Context{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	// With true bandwidths observed, the plan changes.
	second, err := h.Frequencies(Context{Sys: sys, LastBW: []float64{5e6, 2e6, 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first {
		if !testutil.Within(second[i], first[i], 1) {
			same = false
		}
	}
	if same {
		t.Fatal("heuristic ignored the observed bandwidth")
	}
	if _, err := NewHeuristic(nil, 0.05); err == nil {
		t.Fatal("empty initial bandwidth accepted")
	}
	if _, err := NewHeuristic([]float64{1e6}, 2); err == nil {
		t.Fatal("bad minFrac accepted")
	}
}

func TestHeuristicOptimalOnTrulyStaticNetwork(t *testing.T) {
	// On constant traces the heuristic's assumption is exact from iteration
	// 2 on, so its cost should be near the known-bandwidth optimum.
	sys := constSystem([]float64{5e6, 2e6, 1e6})
	h, _ := NewHeuristic([]float64{3e6, 3e6, 3e6}, 0.05)
	its, err := Run(sys, h, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := PlanFrequencies(sys, []float64{5e6, 2e6, 1e6}, 0.05)
	itOpt, _ := sys.RunIteration(0, 0, opt)
	for _, it := range its[1:] {
		if it.Cost > itOpt.Cost*1.01 {
			t.Fatalf("heuristic cost %v far from optimum %v on static network", it.Cost, itOpt.Cost)
		}
	}
}

func TestOracleBeatsHeuristicOnAverage(t *testing.T) {
	sys := dynamicSystem(3, 21)
	or, err := NewOracle(0.05, 60)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := NewHeuristic([]float64{3e6, 3e6, 3e6}, 0.05)
	itsO, err := Run(sys, or, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	itsH, err := Run(sys, h, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	mo := stats.Mean(Costs(itsO))
	mh := stats.Mean(Costs(itsH))
	if mo > mh*1.05 {
		t.Fatalf("oracle mean cost %v clearly worse than heuristic %v", mo, mh)
	}
	if _, err := NewOracle(0, 60); err == nil {
		t.Fatal("bad minFrac accepted")
	}
	if _, err := NewOracle(0.1, 0); err == nil {
		t.Fatal("bad lookahead accepted")
	}
}

func TestDRLSchedulerShapes(t *testing.T) {
	sys := dynamicSystem(3, 9)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	policy := rl.NewGaussianPolicy(3*(cfg.History+1), 3, []int{16}, 0.5, rng)
	d, err := NewDRL(policy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.Frequencies(Context{Sys: sys, Clock: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, dev := range sys.Devices {
		if fs[i] < cfg.MinFreqFrac*dev.MaxFreqHz-1e-6 || fs[i] > dev.MaxFreqHz+1e-6 {
			t.Fatalf("DRL freq %v infeasible", fs[i])
		}
	}
	// Wrong-sized policy is rejected at decision time.
	small := rl.NewGaussianPolicy(4, 3, []int{4}, 0.5, rng)
	d2, _ := NewDRL(small, cfg)
	if _, err := d2.Frequencies(Context{Sys: sys, Clock: 0}); err == nil {
		t.Fatal("state-dim mismatch accepted")
	}
	if _, err := NewDRL(nil, cfg); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := cfg
	bad.SlotSec = 0
	if _, err := NewDRL(policy, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestDRLDeterministicReasoning(t *testing.T) {
	sys := dynamicSystem(2, 13)
	cfg := env.DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	policy := rl.NewGaussianPolicy(2*(cfg.History+1), 2, []int{8}, 0.5, rng)
	d, _ := NewDRL(policy, cfg)
	a, _ := d.Frequencies(Context{Sys: sys, Clock: 42})
	b, _ := d.Frequencies(Context{Sys: sys, Clock: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("online reasoning must be deterministic (mean action)")
		}
	}
}

func TestRunProducesConsistentSeries(t *testing.T) {
	sys := dynamicSystem(3, 7)
	its, err := Run(sys, MaxFreq{}, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) != 25 {
		t.Fatalf("got %d iterations", len(its))
	}
	cs, ds, es := Costs(its), Durations(its), ComputeEnergies(its)
	for k := range its {
		if its[k].Index != k {
			t.Fatalf("index %d at position %d", its[k].Index, k)
		}
		if !testutil.Within(cs[k], ds[k]+sys.Lambda*its[k].TotalEnergy(), 1e-9) {
			t.Fatalf("cost series inconsistent at %d", k)
		}
		if es[k] != its[k].ComputeEnergy {
			t.Fatal("energy series mismatch")
		}
	}
	if _, err := Run(sys, MaxFreq{}, 0, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestRunSurfacesSchedulerErrors(t *testing.T) {
	sys := dynamicSystem(2, 3)
	bad := badScheduler{}
	if _, err := Run(sys, bad, 0, 3); err == nil {
		t.Fatal("scheduler error not surfaced")
	}
	inf := infeasibleScheduler{}
	if _, err := Run(sys, inf, 0, 3); err == nil {
		t.Fatal("infeasible frequencies not surfaced")
	}
}

type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }
func (badScheduler) Frequencies(Context) ([]float64, error) {
	return nil, errBad
}

var errBad = fmt.Errorf("deliberate scheduler failure")

type infeasibleScheduler struct{}

func (infeasibleScheduler) Name() string { return "inf" }
func (infeasibleScheduler) Frequencies(ctx Context) ([]float64, error) {
	fs := make([]float64, ctx.Sys.N())
	return fs, nil // all zeros: outside (0, δmax]
}
