package bandwidth

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadDatasetDir(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataset(Walking4G(), 3, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveDatasetDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDatasetDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != 3 {
		t.Fatalf("loaded %d traces", len(back.Traces))
	}
	// Values survive the round trip (names are sorted, content matches by
	// per-trace means since the order may differ).
	origMeans := map[float64]bool{}
	for _, tr := range ds.Traces {
		origMeans[tr.Summary().Mean] = true
	}
	for _, tr := range back.Traces {
		if !origMeans[tr.Summary().Mean] {
			t.Fatalf("trace %s mean %v not in original set", tr.Name, tr.Summary().Mean)
		}
	}
}

func TestLoadDatasetDirErrors(t *testing.T) {
	if _, err := LoadDatasetDir("/nonexistent-dir"); err == nil {
		t.Fatal("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := LoadDatasetDir(empty); err == nil {
		t.Fatal("empty dir accepted")
	}
	// Non-CSV files are skipped; a bad CSV errors.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("x,y\nfoo,bar\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDatasetDir(dir); err == nil {
		t.Fatal("bad CSV accepted")
	}
}

func TestDatasetSummary(t *testing.T) {
	ds, err := NewDataset(Constant(2*MBps), 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Summary()
	if s.Mean != 2*MBps || s.Std != 0 {
		t.Fatalf("summary = %+v", s)
	}
	empty := &Dataset{}
	if got := empty.Summary(); got.Mean != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("walking 4g/01!"); got != "walking_4g_01_" {
		t.Fatalf("sanitize = %q", got)
	}
}
