// Package bandwidth synthesizes uplink-bandwidth traces that stand in for
// the real-world datasets used by the paper (the Ghent 4G/LTE measurement
// campaign [26] and the Norwegian HSDPA bus logs [12]), which are not
// available offline.
//
// The generator is a regime-switching Markov model: the link occupies one of
// a few quality regimes (excellent/good/fair/poor/outage) for multi-second
// holding times, and within a regime the bandwidth follows a mean-reverting
// AR(1) walk. This reproduces the two properties the paper's DRL agent
// actually exploits — bandwidth is "reasonably stable on short timescales"
// (tens of seconds, [20][21]) yet swings across its whole range over minutes
// (Fig. 2) — while keeping everything deterministic under a seed. Real
// traces in the two-column CSV format load through internal/trace unchanged.
package bandwidth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Regime describes one Markov state of the link.
type Regime struct {
	// Name for debugging/reporting.
	Name string
	// Mean bandwidth in bytes/second while in this regime.
	Mean float64
	// Jitter is the relative std-dev of the AR(1) noise inside the regime.
	Jitter float64
	// MeanHold is the expected holding time in seconds (geometric dwell).
	MeanHold float64
}

// Profile parameterizes a generator: a set of regimes, a transition
// distribution, and global bounds.
type Profile struct {
	// Name of the profile (e.g. "walking-4g").
	Name string
	// Regimes in the Markov chain; at least one.
	Regimes []Regime
	// Trans[i][j] is the probability of moving to regime j when regime i's
	// dwell expires. Rows must sum to ~1.
	Trans [][]float64
	// Floor and Cap bound every sample (bytes/second), Cap ≤ 0 disables.
	Floor, Cap float64
	// AR1 is the within-regime mean-reversion coefficient in [0,1);
	// higher ⇒ smoother.
	AR1 float64
	// Interval is the sample spacing in seconds.
	Interval float64
	// Drift adds a slow non-stationary modulation on top of the regimes,
	// mirroring the route/time-of-day scale variation of real measurement
	// campaigns: regime means are multiplied by 1 + Amp·sin(2πt/Period + φ)
	// with a seed-dependent phase φ. Amp = 0 disables it.
	Drift Drift
}

// Drift parameterizes the slow modulation of a Profile.
type Drift struct {
	// Amp is the relative amplitude in [0, 1).
	Amp float64
	// PeriodSec is the modulation period in seconds (> 0 when Amp > 0).
	PeriodSec float64
}

// Validate checks that the profile is internally consistent.
func (p *Profile) Validate() error {
	if len(p.Regimes) == 0 {
		return fmt.Errorf("bandwidth profile %q: no regimes", p.Name)
	}
	if len(p.Trans) != len(p.Regimes) {
		return fmt.Errorf("bandwidth profile %q: transition matrix has %d rows, want %d",
			p.Name, len(p.Trans), len(p.Regimes))
	}
	for i, row := range p.Trans {
		if len(row) != len(p.Regimes) {
			return fmt.Errorf("bandwidth profile %q: row %d has %d cols", p.Name, i, len(row))
		}
		sum := 0.0
		for _, x := range row {
			if x < 0 {
				return fmt.Errorf("bandwidth profile %q: negative transition prob in row %d", p.Name, i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("bandwidth profile %q: row %d sums to %v", p.Name, i, sum)
		}
	}
	for i, r := range p.Regimes {
		if r.Mean < 0 || r.MeanHold <= 0 || r.Jitter < 0 {
			return fmt.Errorf("bandwidth profile %q: regime %d invalid", p.Name, i)
		}
	}
	if p.AR1 < 0 || p.AR1 >= 1 {
		return fmt.Errorf("bandwidth profile %q: AR1 %v out of [0,1)", p.Name, p.AR1)
	}
	if p.Interval <= 0 {
		return fmt.Errorf("bandwidth profile %q: interval %v must be positive", p.Name, p.Interval)
	}
	if p.Drift.Amp < 0 || p.Drift.Amp >= 1 {
		return fmt.Errorf("bandwidth profile %q: drift amplitude %v outside [0,1)", p.Name, p.Drift.Amp)
	}
	if p.Drift.Amp > 0 && p.Drift.PeriodSec <= 0 {
		return fmt.Errorf("bandwidth profile %q: drift period %v must be positive", p.Name, p.Drift.PeriodSec)
	}
	return nil
}

// Generate produces a seeded trace of the given duration (seconds).
func (p *Profile) Generate(name string, durationSec float64, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := int(math.Ceil(durationSec / p.Interval))
	if n <= 0 {
		return nil, fmt.Errorf("bandwidth profile %q: duration %v too short", p.Name, durationSec)
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, n)

	regime := rng.Intn(len(p.Regimes))
	level := p.Regimes[regime].Mean
	dwell := p.drawDwell(rng, regime)
	phase := rng.Float64() * 2 * math.Pi

	for i := 0; i < n; i++ {
		r := p.Regimes[regime]
		mod := 1.0
		if p.Drift.Amp > 0 {
			t := float64(i) * p.Interval
			mod = 1 + p.Drift.Amp*math.Sin(2*math.Pi*t/p.Drift.PeriodSec+phase)
		}
		target := r.Mean * mod
		// Mean-reverting AR(1) around the (drift-modulated) regime mean.
		noise := rng.NormFloat64() * r.Jitter * math.Max(target, 1)
		level = p.AR1*level + (1-p.AR1)*target + noise
		x := level
		if x < p.Floor {
			x = p.Floor
		}
		if p.Cap > 0 && x > p.Cap {
			x = p.Cap
		}
		samples[i] = x

		dwell -= p.Interval
		if dwell <= 0 {
			regime = p.nextRegime(rng, regime)
			dwell = p.drawDwell(rng, regime)
		}
	}
	return trace.New(name, p.Interval, samples)
}

// MustGenerate is Generate, panicking on error.
func (p *Profile) MustGenerate(name string, durationSec float64, seed int64) *trace.Trace {
	tr, err := p.Generate(name, durationSec, seed)
	if err != nil {
		panic(err)
	}
	return tr
}

func (p *Profile) drawDwell(rng *rand.Rand, regime int) float64 {
	// Exponential dwell with the regime's mean holding time, truncated below
	// at one interval so every regime is visible in the trace.
	d := rng.ExpFloat64() * p.Regimes[regime].MeanHold
	if d < p.Interval {
		d = p.Interval
	}
	return d
}

func (p *Profile) nextRegime(rng *rand.Rand, cur int) int {
	u := rng.Float64()
	acc := 0.0
	row := p.Trans[cur]
	for j, pr := range row {
		acc += pr
		if u < acc {
			return j
		}
	}
	return len(row) - 1
}

const (
	// KBps and MBps convert the paper's reporting units to bytes/second.
	KBps = 1e3
	MBps = 1e6
)

// Walking4G models the Ghent walking scenario of Fig. 2(a): bandwidth
// fluctuating between under 1 MB/s and about 9 MB/s within a few hundred
// seconds.
func Walking4G() *Profile {
	return &Profile{
		Name: "walking-4g",
		Regimes: []Regime{
			{Name: "excellent", Mean: 8 * MBps, Jitter: 0.10, MeanHold: 14},
			{Name: "good", Mean: 5 * MBps, Jitter: 0.12, MeanHold: 16},
			{Name: "fair", Mean: 2.5 * MBps, Jitter: 0.15, MeanHold: 16},
			{Name: "poor", Mean: 0.6 * MBps, Jitter: 0.25, MeanHold: 12},
		},
		Trans: [][]float64{
			{0.00, 0.70, 0.25, 0.05},
			{0.30, 0.00, 0.55, 0.15},
			{0.15, 0.45, 0.00, 0.40},
			{0.05, 0.25, 0.70, 0.00},
		},
		Floor:    0.1 * MBps,
		Cap:      9.5 * MBps,
		AR1:      0.85,
		Interval: 1,
		Drift:    Drift{Amp: 0.5, PeriodSec: 2400},
	}
}

// BusHSDPA models the Norwegian HSDPA bus logs of Fig. 2(b): bandwidth in
// [0, 800] KB/s with frequent deep fades.
func BusHSDPA() *Profile {
	return &Profile{
		Name: "bus-hsdpa",
		Regimes: []Regime{
			{Name: "good", Mean: 650 * KBps, Jitter: 0.10, MeanHold: 20},
			{Name: "fair", Mean: 350 * KBps, Jitter: 0.15, MeanHold: 25},
			{Name: "poor", Mean: 120 * KBps, Jitter: 0.25, MeanHold: 15},
			{Name: "outage", Mean: 15 * KBps, Jitter: 0.40, MeanHold: 8},
		},
		Trans: [][]float64{
			{0.00, 0.70, 0.25, 0.05},
			{0.35, 0.00, 0.50, 0.15},
			{0.10, 0.50, 0.00, 0.40},
			{0.05, 0.25, 0.70, 0.00},
		},
		Floor:    5 * KBps,
		Cap:      800 * KBps,
		AR1:      0.80,
		Interval: 1,
		Drift:    Drift{Amp: 0.45, PeriodSec: 1800},
	}
}

// Train4G models a faster-moving scenario with deeper swings (tunnels).
func Train4G() *Profile {
	return &Profile{
		Name: "train-4g",
		Regimes: []Regime{
			{Name: "open", Mean: 6 * MBps, Jitter: 0.12, MeanHold: 40},
			{Name: "suburb", Mean: 3 * MBps, Jitter: 0.15, MeanHold: 30},
			{Name: "cutting", Mean: 1 * MBps, Jitter: 0.25, MeanHold: 15},
			{Name: "tunnel", Mean: 0.15 * MBps, Jitter: 0.40, MeanHold: 10},
		},
		Trans: [][]float64{
			{0.00, 0.70, 0.20, 0.10},
			{0.40, 0.00, 0.40, 0.20},
			{0.15, 0.45, 0.00, 0.40},
			{0.10, 0.30, 0.60, 0.00},
		},
		Floor:    0.02 * MBps,
		Cap:      9 * MBps,
		AR1:      0.82,
		Interval: 1,
		Drift:    Drift{Amp: 0.4, PeriodSec: 2100},
	}
}

// Car4G models the driving scenario: higher average, fast handovers.
func Car4G() *Profile {
	return &Profile{
		Name: "car-4g",
		Regimes: []Regime{
			{Name: "highway", Mean: 7 * MBps, Jitter: 0.10, MeanHold: 20},
			{Name: "urban", Mean: 4 * MBps, Jitter: 0.15, MeanHold: 15},
			{Name: "junction", Mean: 1.5 * MBps, Jitter: 0.22, MeanHold: 10},
		},
		Trans: [][]float64{
			{0.00, 0.75, 0.25},
			{0.45, 0.00, 0.55},
			{0.25, 0.75, 0.00},
		},
		Floor:    0.2 * MBps,
		Cap:      9.5 * MBps,
		AR1:      0.80,
		Interval: 1,
		Drift:    Drift{Amp: 0.45, PeriodSec: 1500},
	}
}

// Bicycle4G models the cycling scenario: mid-range with moderate variance.
func Bicycle4G() *Profile {
	return &Profile{
		Name: "bicycle-4g",
		Regimes: []Regime{
			{Name: "good", Mean: 6 * MBps, Jitter: 0.10, MeanHold: 30},
			{Name: "fair", Mean: 3.5 * MBps, Jitter: 0.12, MeanHold: 30},
			{Name: "poor", Mean: 1.2 * MBps, Jitter: 0.20, MeanHold: 20},
		},
		Trans: [][]float64{
			{0.00, 0.75, 0.25},
			{0.40, 0.00, 0.60},
			{0.20, 0.80, 0.00},
		},
		Floor:    0.15 * MBps,
		Cap:      9 * MBps,
		AR1:      0.85,
		Interval: 1,
		Drift:    Drift{Amp: 0.4, PeriodSec: 2000},
	}
}

// Constant returns a profile whose traces hold a fixed bandwidth — useful
// for deterministic tests and the Static baseline's idealized assumption.
func Constant(bytesPerSec float64) *Profile {
	return &Profile{
		Name: "constant",
		Regimes: []Regime{
			{Name: "only", Mean: bytesPerSec, Jitter: 0, MeanHold: 1e9},
		},
		Trans:    [][]float64{{1}},
		Floor:    bytesPerSec,
		Cap:      bytesPerSec,
		AR1:      0,
		Interval: 1,
	}
}

// WalkingProfiles returns the five distinct walking-style profiles the
// paper's 50-device simulation samples from ("we randomly select five
// walking datasets and let each mobile device randomly select one dataset").
func WalkingProfiles() []*Profile {
	base := []*Profile{Walking4G(), Walking4G(), Walking4G(), Walking4G(), Walking4G()}
	// Perturb the regime means so the five "datasets" are genuinely
	// different routes, as in the real measurement campaign.
	scales := []float64{1.0, 0.85, 1.1, 0.7, 0.95}
	for i, p := range base {
		p.Name = fmt.Sprintf("walking-4g-%d", i+1)
		for j := range p.Regimes {
			p.Regimes[j].Mean *= scales[i]
		}
	}
	return base
}

// Dataset is a collection of traces devices can sample from, standing in
// for the paper's trace files.
type Dataset struct {
	Traces []*trace.Trace
}

// NewDataset generates count traces of the given duration from profile,
// seeded deterministically from baseSeed.
func NewDataset(p *Profile, count int, durationSec float64, baseSeed int64) (*Dataset, error) {
	if count <= 0 {
		return nil, fmt.Errorf("bandwidth: dataset count %d must be positive", count)
	}
	ds := &Dataset{}
	for i := 0; i < count; i++ {
		tr, err := p.Generate(fmt.Sprintf("%s-%02d", p.Name, i), durationSec, baseSeed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		ds.Traces = append(ds.Traces, tr)
	}
	return ds, nil
}

// NewMixedDataset draws traces round-robin from several profiles, matching
// the 50-device simulation where each device picks one of five datasets.
func NewMixedDataset(profiles []*Profile, count int, durationSec float64, baseSeed int64) (*Dataset, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("bandwidth: no profiles")
	}
	if count <= 0 {
		return nil, fmt.Errorf("bandwidth: dataset count %d must be positive", count)
	}
	ds := &Dataset{}
	for i := 0; i < count; i++ {
		p := profiles[i%len(profiles)]
		tr, err := p.Generate(fmt.Sprintf("%s-%02d", p.Name, i), durationSec, baseSeed+int64(i)*104729)
		if err != nil {
			return nil, err
		}
		ds.Traces = append(ds.Traces, tr)
	}
	return ds, nil
}

// Sample returns trace i modulo the dataset size. An empty dataset is a
// programmer error (every constructor returns a non-empty dataset or an
// error), so it panics with context rather than with a bare
// divide-by-zero.
func (d *Dataset) Sample(i int) *trace.Trace {
	if len(d.Traces) == 0 {
		panic("bandwidth: Sample on empty dataset")
	}
	return d.Traces[((i%len(d.Traces))+len(d.Traces))%len(d.Traces)]
}
