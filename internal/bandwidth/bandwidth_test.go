package bandwidth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{Walking4G(), BusHSDPA(), Train4G(), Car4G(), Bicycle4G(), Constant(5 * MBps)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	for _, p := range WalkingProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mk := func(mut func(*Profile)) *Profile {
		p := Walking4G()
		mut(p)
		return p
	}
	bad := map[string]*Profile{
		"no regimes":    mk(func(p *Profile) { p.Regimes = nil }),
		"rows mismatch": mk(func(p *Profile) { p.Trans = p.Trans[:2] }),
		"cols mismatch": mk(func(p *Profile) { p.Trans[0] = p.Trans[0][:2] }),
		"row not prob":  mk(func(p *Profile) { p.Trans[0][1] += 0.5 }),
		"negative prob": mk(func(p *Profile) { p.Trans[0][1] = -0.1; p.Trans[0][2] = 1.05 }),
		"bad regime":    mk(func(p *Profile) { p.Regimes[0].MeanHold = 0 }),
		"bad AR1":       mk(func(p *Profile) { p.AR1 = 1.0 }),
		"bad interval":  mk(func(p *Profile) { p.Interval = 0 }),
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validation should fail", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Walking4G()
	a := p.MustGenerate("a", 100, 42)
	b := p.MustGenerate("b", 100, 42)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := p.MustGenerate("c", 100, 43)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different traces")
	}
}

func TestGenerateBounds(t *testing.T) {
	for _, p := range []*Profile{Walking4G(), BusHSDPA(), Train4G()} {
		tr := p.MustGenerate("b", 600, 7)
		for i, s := range tr.Samples {
			if s < p.Floor || (p.Cap > 0 && s > p.Cap) {
				t.Fatalf("%s sample %d = %v outside [%v, %v]", p.Name, i, s, p.Floor, p.Cap)
			}
		}
	}
}

func TestGenerateEnvelopeMatchesPaper(t *testing.T) {
	// Fig 2(a): walking 4G swings from <1 MB/s to ~9 MB/s.
	tr := Walking4G().MustGenerate("w", 3000, 11)
	s := tr.Summary()
	if s.Max < 6*MBps {
		t.Errorf("walking max %v never approaches the paper's high band", s.Max)
	}
	if s.Min > 1.5*MBps {
		t.Errorf("walking min %v never drops toward the paper's low band", s.Min)
	}
	// Fig 2(b): HSDPA bus lives in [0, 800] KB/s.
	tb := BusHSDPA().MustGenerate("b", 3000, 11)
	sb := tb.Summary()
	if sb.Max > 800*KBps {
		t.Errorf("bus max %v exceeds 800 KB/s", sb.Max)
	}
	if sb.Mean > 600*KBps || sb.Mean < 50*KBps {
		t.Errorf("bus mean %v implausible", sb.Mean)
	}
}

func TestShortTimescaleStability(t *testing.T) {
	// The paper's state design relies on bandwidth being "reasonably stable"
	// over a slot h of tens of seconds: adjacent 10 s slot averages should
	// be correlated far more than distant ones.
	tr := Walking4G().MustGenerate("s", 4000, 3)
	h := 10.0
	n := int(tr.Duration()/h) - 1
	slots := make([]float64, n)
	for j := 0; j < n; j++ {
		slots[j] = tr.Slot(j, h)
	}
	adj := autocorr(slots, 1)
	far := autocorr(slots, 12)
	if adj < 0.5 {
		t.Errorf("adjacent slot autocorrelation %v too low for the paper's assumption", adj)
	}
	if adj <= far {
		t.Errorf("autocorrelation should decay with lag: lag1=%v lag12=%v", adj, far)
	}
}

func autocorr(x []float64, lag int) float64 {
	n := len(x) - lag
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var num, den float64
	for i := 0; i < n; i++ {
		num += (x[i] - mean) * (x[i+lag] - mean)
	}
	for _, v := range x {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestConstantProfile(t *testing.T) {
	p := Constant(3 * MBps)
	tr := p.MustGenerate("c", 60, 1)
	for _, s := range tr.Samples {
		if s != 3*MBps {
			t.Fatalf("constant profile produced %v", s)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p := Walking4G()
	if _, err := p.Generate("x", 0, 1); err == nil {
		t.Fatal("zero duration should error")
	}
	p.Interval = 0
	if _, err := p.Generate("x", 10, 1); err == nil {
		t.Fatal("invalid profile should error")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid profile")
		}
	}()
	p := Walking4G()
	p.Regimes = nil
	p.MustGenerate("x", 10, 1)
}

func TestDataset(t *testing.T) {
	ds, err := NewDataset(Walking4G(), 4, 120, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) != 4 {
		t.Fatalf("got %d traces", len(ds.Traces))
	}
	if ds.Sample(0) != ds.Traces[0] || ds.Sample(5) != ds.Traces[1] || ds.Sample(-1) != ds.Traces[3] {
		t.Fatal("Sample indexing wrong")
	}
	if _, err := NewDataset(Walking4G(), 0, 120, 1); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestMixedDataset(t *testing.T) {
	profiles := WalkingProfiles()
	ds, err := NewMixedDataset(profiles, 12, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) != 12 {
		t.Fatalf("got %d traces", len(ds.Traces))
	}
	// Round-robin assignment: trace i comes from profile i%5.
	for i, tr := range ds.Traces {
		wantPrefix := profiles[i%5].Name
		if len(tr.Name) < len(wantPrefix) || tr.Name[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("trace %d name %q not from profile %q", i, tr.Name, wantPrefix)
		}
	}
	if _, err := NewMixedDataset(nil, 3, 100, 1); err == nil {
		t.Fatal("empty profile list should error")
	}
	if _, err := NewMixedDataset(profiles, -1, 100, 1); err == nil {
		t.Fatal("negative count should error")
	}
}

func TestWalkingProfilesDistinct(t *testing.T) {
	ps := WalkingProfiles()
	if len(ps) != 5 {
		t.Fatalf("want 5 profiles, got %d", len(ps))
	}
	means := map[float64]bool{}
	for _, p := range ps {
		means[p.Regimes[0].Mean] = true
	}
	if len(means) < 4 {
		t.Fatal("walking profiles should have distinct regime means")
	}
}

func TestGeneratedTraceFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := BusHSDPA().MustGenerate("q", 150, seed)
		for _, s := range tr.Samples {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
