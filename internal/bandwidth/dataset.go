package bandwidth

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/trace"
)

// LoadDatasetDir loads every *.csv file in dir (two-column time,bandwidth
// format — the export format of cmd/tracegen and the natural shape of the
// paper's real 4G/HSDPA logs) into a Dataset, sorted by filename so runs
// are reproducible.
func LoadDatasetDir(dir string) (*Dataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("bandwidth: read dataset dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("bandwidth: no .csv traces in %s", dir)
	}
	ds := &Dataset{}
	for _, p := range paths {
		tr, err := trace.LoadCSVFile(p)
		if err != nil {
			// The trace error names the file; the wrap adds which dataset
			// load tripped over it, so a bad row in one of hundreds of CSVs
			// is attributable from the top-level error alone.
			return nil, fmt.Errorf("bandwidth: dataset %s: %w", dir, err)
		}
		ds.Traces = append(ds.Traces, tr)
	}
	return ds, nil
}

// SaveDatasetDir writes every trace in the dataset to dir as CSV files.
func (d *Dataset) SaveDatasetDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bandwidth: create dataset dir: %w", err)
	}
	for i, tr := range d.Traces {
		name := tr.Name
		if name == "" {
			name = fmt.Sprintf("trace-%03d", i)
		}
		path := filepath.Join(dir, sanitize(name)+".csv")
		if err := tr.SaveCSVFile(path); err != nil {
			return err
		}
	}
	return nil
}

// sanitize keeps dataset filenames portable.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// Summary aggregates statistics across the whole dataset.
func (d *Dataset) Summary() trace.Stats {
	var all []float64
	for _, tr := range d.Traces {
		all = append(all, tr.Samples...)
	}
	agg, err := trace.New("aggregate", 1, all)
	if err != nil {
		return trace.Stats{}
	}
	return agg.Summary()
}
