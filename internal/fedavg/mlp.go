package fedavg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLPModel is a small neural binary classifier trained with per-sample SGD
// on binary cross-entropy — the non-convex counterpart to LogisticModel,
// closer to the deep models the paper's devices train.
type MLPModel struct {
	// Net maps features to one logit (sigmoid applied in the loss).
	Net *nn.MLP
}

var _ Model = (*MLPModel)(nil)

// NewMLPModel builds a classifier with the given feature dimension and
// hidden widths.
func NewMLPModel(dim int, hidden []int, seed int64) *MLPModel {
	if dim <= 0 {
		panic(fmt.Sprintf("fedavg: dimension %d must be positive", dim))
	}
	sizes := append(append([]int{dim}, hidden...), 1)
	rng := rand.New(rand.NewSource(seed))
	return &MLPModel{Net: nn.NewMLP(sizes, nn.Tanh, nn.Identity, rng)}
}

// Predict returns P(y=1|x).
func (m *MLPModel) Predict(x tensor.Vector) float64 {
	return sigmoid(m.Net.Forward(x)[0])
}

// Loss implements Model with mean binary cross-entropy.
func (m *MLPModel) Loss(X *tensor.Matrix, y []float64) float64 {
	if X.Rows != len(y) {
		panic("fedavg: X/y length mismatch")
	}
	if X.Rows == 0 {
		return 0
	}
	var loss float64
	for r := 0; r < X.Rows; r++ {
		p := m.Predict(X.Row(r))
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if y[r] > 0.5 {
			loss += -math.Log(p)
		} else {
			loss += -math.Log(1 - p)
		}
	}
	return loss / float64(X.Rows)
}

// TrainEpochs implements Model: shuffled per-sample SGD through backprop.
func (m *MLPModel) TrainEpochs(X *tensor.Matrix, y []float64, epochs int, lr float64, rng *rand.Rand) {
	if X.Rows == 0 || epochs <= 0 {
		return
	}
	order := make([]int, X.Rows)
	for i := range order {
		order[i] = i
	}
	dout := tensor.NewVector(1)
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, r := range order {
			x := X.Row(r)
			m.Net.ZeroGrad()
			logit := m.Net.Forward(x)[0]
			// d(BCE)/d(logit) = σ(logit) − y.
			dout[0] = sigmoid(logit) - y[r]
			m.Net.Backward(dout)
			for _, p := range m.Net.Params() {
				for i := range p.W {
					p.W[i] -= lr * p.G[i]
				}
			}
		}
	}
}

// Params implements Model (flattened layer by layer).
func (m *MLPModel) Params() []float64 {
	var out []float64
	for _, p := range m.Net.Params() {
		out = append(out, p.W...)
	}
	return out
}

// SetParams implements Model.
func (m *MLPModel) SetParams(flat []float64) error {
	want := m.Net.NumParams()
	if len(flat) != want {
		return fmt.Errorf("fedavg: parameter length %d, want %d", len(flat), want)
	}
	off := 0
	for _, p := range m.Net.Params() {
		copy(p.W, flat[off:off+len(p.W)])
		off += len(p.W)
	}
	return nil
}

// Clone implements Model.
func (m *MLPModel) Clone() Model {
	return &MLPModel{Net: m.Net.Clone()}
}

// Accuracy returns the fraction of correct 0/1 predictions.
func (m *MLPModel) Accuracy(X *tensor.Matrix, y []float64) float64 {
	if X.Rows == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < X.Rows; r++ {
		pred := 0.0
		if m.Predict(X.Row(r)) >= 0.5 {
			pred = 1
		}
		if pred == y[r] {
			correct++
		}
	}
	return float64(correct) / float64(X.Rows)
}
