package fedavg

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/testutil"
)

// xorData builds the classic non-linearly-separable XOR task.
func xorData(n int, seed int64) (*tensor.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := tensor.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		X.Set(i, 0, float64(a)*2-1+rng.NormFloat64()*0.1)
		X.Set(i, 1, float64(b)*2-1+rng.NormFloat64()*0.1)
		if a != b {
			y[i] = 1
		}
	}
	return X, y
}

func TestMLPModelLearnsXOR(t *testing.T) {
	// A linear model cannot solve XOR; the MLP must.
	X, y := xorData(200, 1)
	m := NewMLPModel(2, []int{8}, 3)
	rng := rand.New(rand.NewSource(2))
	before := m.Loss(X, y)
	m.TrainEpochs(X, y, 60, 0.1, rng)
	after := m.Loss(X, y)
	if after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
	if acc := m.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("XOR accuracy %v", acc)
	}
	// A logistic model on the same data is capped by its linear decision
	// boundary: it can separate at most three of the four XOR corners
	// (~75–80%), never approach the MLP.
	lin := NewLogisticModel(2, 0)
	lin.TrainEpochs(X, y, 60, 0.1, rng)
	if acc := lin.Accuracy(X, y); acc > 0.85 {
		t.Fatalf("linear model should not solve XOR, got accuracy %v", acc)
	}
}

func TestMLPModelParamsRoundTrip(t *testing.T) {
	m := NewMLPModel(3, []int{4}, 1)
	p := m.Params()
	want := 3*4 + 4 + 4*1 + 1
	if len(p) != want {
		t.Fatalf("param count %d want %d", len(p), want)
	}
	// Perturb then restore.
	m2 := NewMLPModel(3, []int{4}, 99)
	if err := m2.SetParams(p); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.2, -0.5, 0.9}
	if !testutil.Within(m.Predict(x), m2.Predict(x), 1e-15) {
		t.Fatal("SetParams did not reproduce predictions")
	}
	if err := m2.SetParams(p[:3]); err == nil {
		t.Fatal("short params accepted")
	}
}

func TestMLPModelClone(t *testing.T) {
	m := NewMLPModel(2, []int{3}, 5)
	c := m.Clone().(*MLPModel)
	x := tensor.Vector{0.4, 0.6}
	if m.Predict(x) != c.Predict(x) {
		t.Fatal("clone predicts differently")
	}
	c.Net.Params()[0].W[0] += 1
	if m.Predict(x) == c.Predict(x) {
		t.Fatal("clone shares storage")
	}
}

func TestMLPModelEdge(t *testing.T) {
	m := NewMLPModel(2, nil, 1) // no hidden layer: logistic regression shape
	if m.Loss(tensor.NewMatrix(0, 2), nil) != 0 {
		t.Fatal("empty loss")
	}
	m.TrainEpochs(tensor.NewMatrix(0, 2), nil, 3, 0.1, nil) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("dim 0 should panic")
		}
	}()
	NewMLPModel(0, nil, 1)
}

func TestFederationWithMLPModel(t *testing.T) {
	// FedAvg over MLP parameter vectors: the federation machinery is
	// model-agnostic, so a few rounds must reduce the global loss.
	cfg := DefaultSyntheticConfig(3)
	cfg.SamplesMin, cfg.SamplesMax = 60, 90
	clients, _, err := GenerateSynthetic(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewFederation(clients, NewMLPModel(cfg.Dim, []int{6}, 1), 2, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := fed.GlobalLoss()
	for k := 0; k < 10; k++ {
		fed.Round()
	}
	after := fed.GlobalLoss()
	if after >= before {
		t.Fatalf("federated MLP loss did not improve: %v → %v", before, after)
	}
}
