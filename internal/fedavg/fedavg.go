// Package fedavg implements the learning half of federated learning: real
// model training with FedAvg aggregation over decentralized datasets. The
// timing/energy simulator (internal/fl) decides *when* rounds complete and
// what they cost; this package decides *what* is learned, exercising the
// paper's loss functions (7)–(8) and the training-quality constraint (10)
// F(ω) < ε that determines the total number of iterations K.
package fedavg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Model is a trainable predictor with a flat parameter view, the unit of
// exchange between clients and the parameter server.
type Model interface {
	// Loss returns the mean loss over the dataset (eq. 7).
	Loss(X *tensor.Matrix, y []float64) float64
	// TrainEpochs runs `epochs` passes of SGD over the dataset (the τ local
	// training passes of the paper).
	TrainEpochs(X *tensor.Matrix, y []float64, epochs int, lr float64, rng *rand.Rand)
	// Params returns a copy of the flat parameter vector ω.
	Params() []float64
	// SetParams overwrites the parameters from a flat vector.
	SetParams(p []float64) error
	// Clone returns an independent copy.
	Clone() Model
}

// LogisticModel is l2-regularized logistic regression — the convex model
// federated-optimization papers evaluate on.
type LogisticModel struct {
	// W holds the weights; the last element is the bias.
	W tensor.Vector
	// L2 is the regularization strength.
	L2 float64
}

// NewLogisticModel creates a zero-initialized model for `dim` features.
func NewLogisticModel(dim int, l2 float64) *LogisticModel {
	if dim <= 0 {
		panic(fmt.Sprintf("fedavg: dimension %d must be positive", dim))
	}
	if l2 < 0 {
		panic(fmt.Sprintf("fedavg: negative regularization %v", l2))
	}
	return &LogisticModel{W: tensor.NewVector(dim + 1), L2: l2}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Predict returns P(y=1|x).
func (m *LogisticModel) Predict(x tensor.Vector) float64 {
	dim := len(m.W) - 1
	if len(x) != dim {
		panic(fmt.Sprintf("fedavg: feature dim %d, want %d", len(x), dim))
	}
	z := m.W[dim]
	for i, xi := range x {
		z += m.W[i] * xi
	}
	return sigmoid(z)
}

// Loss implements Model with the binary cross-entropy plus l2 penalty.
func (m *LogisticModel) Loss(X *tensor.Matrix, y []float64) float64 {
	if X.Rows != len(y) {
		panic("fedavg: X/y length mismatch")
	}
	if X.Rows == 0 {
		return 0
	}
	var loss float64
	for r := 0; r < X.Rows; r++ {
		p := m.Predict(X.Row(r))
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if y[r] > 0.5 {
			loss += -math.Log(p)
		} else {
			loss += -math.Log(1 - p)
		}
	}
	loss /= float64(X.Rows)
	var reg float64
	for _, w := range m.W[:len(m.W)-1] {
		reg += w * w
	}
	return loss + 0.5*m.L2*reg
}

// TrainEpochs implements Model with shuffled per-sample SGD.
func (m *LogisticModel) TrainEpochs(X *tensor.Matrix, y []float64, epochs int, lr float64, rng *rand.Rand) {
	if X.Rows == 0 || epochs <= 0 {
		return
	}
	dim := len(m.W) - 1
	order := make([]int, X.Rows)
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, r := range order {
			x := X.Row(r)
			p := m.Predict(x)
			g := p - y[r] // d(BCE)/dz
			for i := 0; i < dim; i++ {
				m.W[i] -= lr * (g*x[i] + m.L2*m.W[i])
			}
			m.W[dim] -= lr * g
		}
	}
}

// Params implements Model.
func (m *LogisticModel) Params() []float64 {
	return append([]float64(nil), m.W...)
}

// SetParams implements Model.
func (m *LogisticModel) SetParams(p []float64) error {
	if len(p) != len(m.W) {
		return fmt.Errorf("fedavg: parameter length %d, want %d", len(p), len(m.W))
	}
	copy(m.W, p)
	return nil
}

// Clone implements Model.
func (m *LogisticModel) Clone() Model {
	return &LogisticModel{W: m.W.Clone(), L2: m.L2}
}

// Accuracy returns the fraction of correct 0/1 predictions.
func (m *LogisticModel) Accuracy(X *tensor.Matrix, y []float64) float64 {
	if X.Rows == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < X.Rows; r++ {
		pred := 0.0
		if m.Predict(X.Row(r)) >= 0.5 {
			pred = 1
		}
		if pred == y[r] {
			correct++
		}
	}
	return float64(correct) / float64(X.Rows)
}

// Client is one device's local dataset D_i.
type Client struct {
	// X holds one sample per row.
	X *tensor.Matrix
	// Y holds the 0/1 labels.
	Y []float64
}

// Size returns |D_i|.
func (c *Client) Size() int { return c.X.Rows }

// Federation is the parameter server plus its clients.
type Federation struct {
	// Clients holds the devices' local data.
	Clients []*Client
	// Global is the current global model ω.
	Global Model
	// Tau is τ, local epochs per round.
	Tau int
	// LR is the clients' SGD learning rate.
	LR float64

	rng *rand.Rand
}

// NewFederation validates and assembles a federation.
func NewFederation(clients []*Client, global Model, tau int, lr float64, seed int64) (*Federation, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fedavg: no clients")
	}
	for i, c := range clients {
		if c == nil || c.X == nil {
			return nil, fmt.Errorf("fedavg: client %d is nil", i)
		}
		if c.X.Rows != len(c.Y) {
			return nil, fmt.Errorf("fedavg: client %d has %d samples but %d labels", i, c.X.Rows, len(c.Y))
		}
		if c.X.Rows == 0 {
			return nil, fmt.Errorf("fedavg: client %d has no data", i)
		}
	}
	if global == nil {
		return nil, fmt.Errorf("fedavg: nil global model")
	}
	if tau <= 0 {
		return nil, fmt.Errorf("fedavg: τ = %d must be positive", tau)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("fedavg: learning rate %v must be positive", lr)
	}
	return &Federation{Clients: clients, Global: global, Tau: tau, LR: lr, rng: rand.New(rand.NewSource(seed))}, nil
}

// GlobalLoss computes eq. (8): the D_n-weighted average of client losses.
func (f *Federation) GlobalLoss() float64 {
	var num, den float64
	for _, c := range f.Clients {
		num += float64(c.Size()) * f.Global.Loss(c.X, c.Y)
		den += float64(c.Size())
	}
	return num / den
}

// Round runs one synchronous FedAvg round: every client trains the current
// global model for τ epochs locally, and the server replaces ω with the
// D_n-weighted average of the local models. It returns the post-round
// global loss.
func (f *Federation) Round() float64 {
	base := f.Global.Params()
	agg := make([]float64, len(base))
	var total float64
	for _, c := range f.Clients {
		local := f.Global.Clone()
		local.TrainEpochs(c.X, c.Y, f.Tau, f.LR, f.rng)
		w := float64(c.Size())
		for i, p := range local.Params() {
			agg[i] += w * p
		}
		total += w
	}
	for i := range agg {
		agg[i] /= total
	}
	if err := f.Global.SetParams(agg); err != nil {
		// All clones share the global architecture; length mismatch is a bug.
		panic(err)
	}
	return f.GlobalLoss()
}

// TrainResult reports a TrainUntil run.
type TrainResult struct {
	// Rounds is K, the number of rounds executed.
	Rounds int
	// FinalLoss is F(ω) after the last round.
	FinalLoss float64
	// Converged reports whether constraint (10) F(ω) < ε was met.
	Converged bool
	// LossCurve holds the global loss after each round.
	LossCurve []float64
}

// TrainUntil runs rounds until F(ω) < ε (constraint 10) or maxRounds is hit.
func (f *Federation) TrainUntil(eps float64, maxRounds int) (TrainResult, error) {
	if eps <= 0 {
		return TrainResult{}, fmt.Errorf("fedavg: ε = %v must be positive", eps)
	}
	if maxRounds <= 0 {
		return TrainResult{}, fmt.Errorf("fedavg: max rounds %d must be positive", maxRounds)
	}
	res := TrainResult{}
	for k := 0; k < maxRounds; k++ {
		loss := f.Round()
		res.Rounds++
		res.FinalLoss = loss
		res.LossCurve = append(res.LossCurve, loss)
		if loss < eps {
			res.Converged = true
			break
		}
	}
	return res, nil
}
