package fedavg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/testutil"
)

func smallClients(t *testing.T, n int, seed int64) []*Client {
	t.Helper()
	cfg := DefaultSyntheticConfig(n)
	cfg.SamplesMin, cfg.SamplesMax = 40, 80
	clients, _, err := GenerateSynthetic(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return clients
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	testutil.AssertWithin(t, "sigmoid(0)", sigmoid(0), 0.5, 1e-15)
}

func TestLogisticModelBasics(t *testing.T) {
	m := NewLogisticModel(2, 0)
	// Zero weights ⇒ p = 0.5 everywhere, BCE = log 2.
	X := tensor.FromRows([][]float64{{1, 2}, {-1, 0}})
	y := []float64{1, 0}
	testutil.AssertWithin(t, "zero-model loss", m.Loss(X, y), math.Log(2), 1e-12)
	// Known weights.
	if err := m.SetParams([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	testutil.AssertWithin(t, "predict", m.Predict(tensor.Vector{2, 0}), sigmoid(2), 1e-12)
	if err := m.SetParams([]float64{1}); err == nil {
		t.Fatal("bad param length accepted")
	}
}

func TestLogisticModelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dim":    func() { NewLogisticModel(0, 0) },
		"l2":     func() { NewLogisticModel(2, -1) },
		"xy len": func() { NewLogisticModel(1, 0).Loss(tensor.NewMatrix(2, 1), []float64{1}) },
		"x dim":  func() { NewLogisticModel(2, 0).Predict(tensor.Vector{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSGDReducesLossOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Separable: y = 1 iff x0 > 0.
	n := 200
	X := tensor.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		X.Set(i, 0, v)
		if v > 0 {
			y[i] = 1
		}
	}
	m := NewLogisticModel(1, 0)
	before := m.Loss(X, y)
	m.TrainEpochs(X, y, 20, 0.1, rng)
	after := m.Loss(X, y)
	if after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
	if acc := m.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("accuracy %v too low on separable data", acc)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewLogisticModel(2, 0.01)
	if err := m.SetParams([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.SetParams([]float64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if m.W[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	lm := c.(*LogisticModel)
	if lm.L2 != 0.01 {
		t.Fatal("Clone lost regularization")
	}
}

func TestGenerateSyntheticShapes(t *testing.T) {
	cfg := DefaultSyntheticConfig(4)
	clients, truth, err := GenerateSynthetic(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 4 || len(truth) != cfg.Dim+1 {
		t.Fatalf("shapes: %d clients, %d truth", len(clients), len(truth))
	}
	for i, c := range clients {
		if c.Size() < cfg.SamplesMin || c.Size() > cfg.SamplesMax {
			t.Fatalf("client %d size %d outside range", i, c.Size())
		}
		for _, label := range c.Y {
			if label != 0 && label != 1 {
				t.Fatalf("non-binary label %v", label)
			}
		}
	}
	// Determinism.
	again, _, _ := GenerateSynthetic(cfg, 7)
	if again[0].X.At(0, 0) != clients[0].X.At(0, 0) {
		t.Fatal("same seed must reproduce data")
	}
}

func TestSyntheticConfigValidate(t *testing.T) {
	muts := map[string]func(*SyntheticConfig){
		"clients": func(c *SyntheticConfig) { c.Clients = 0 },
		"dim":     func(c *SyntheticConfig) { c.Dim = 0 },
		"samples": func(c *SyntheticConfig) { c.SamplesMin = 0 },
		"range":   func(c *SyntheticConfig) { c.SamplesMax = c.SamplesMin - 1 },
		"noniid":  func(c *SyntheticConfig) { c.NonIID = 1.5 },
		"noise":   func(c *SyntheticConfig) { c.LabelNoise = 0.5 },
	}
	for name, mut := range muts {
		c := DefaultSyntheticConfig(3)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewFederationValidation(t *testing.T) {
	clients := smallClients(t, 2, 3)
	model := NewLogisticModel(10, 0)
	if _, err := NewFederation(clients, model, 2, 0.05, 1); err != nil {
		t.Fatalf("valid federation rejected: %v", err)
	}
	if _, err := NewFederation(nil, model, 2, 0.05, 1); err == nil {
		t.Fatal("no clients accepted")
	}
	if _, err := NewFederation(clients, nil, 2, 0.05, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewFederation(clients, model, 0, 0.05, 1); err == nil {
		t.Fatal("zero tau accepted")
	}
	if _, err := NewFederation(clients, model, 2, 0, 1); err == nil {
		t.Fatal("zero lr accepted")
	}
	bad := []*Client{{X: tensor.NewMatrix(2, 3), Y: []float64{1}}}
	if _, err := NewFederation(bad, model, 1, 0.1, 1); err == nil {
		t.Fatal("mismatched client accepted")
	}
	empty := []*Client{{X: tensor.NewMatrix(0, 3), Y: nil}}
	if _, err := NewFederation(empty, model, 1, 0.1, 1); err == nil {
		t.Fatal("empty client accepted")
	}
}

func TestGlobalLossWeightedByDataSize(t *testing.T) {
	// Eq. (8): F = Σ D_n F_n / Σ D_n. Build two clients with known,
	// different local losses via hand-set labels against a zero model
	// (loss log 2 each) — weighting must reduce to log 2 — then perturb.
	m := NewLogisticModel(1, 0)
	big := &Client{X: tensor.NewMatrix(30, 1), Y: make([]float64, 30)}
	small := &Client{X: tensor.NewMatrix(10, 1), Y: make([]float64, 10)}
	f, err := NewFederation([]*Client{big, small}, m, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertWithin(t, "uniform loss", f.GlobalLoss(), math.Log(2), 1e-12)
	// With weights set so big-client loss ≠ small-client loss, check the
	// 3:1 weighting explicitly.
	if err := m.SetParams([]float64{5, 0}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		big.X.Set(r, 0, 1) // p≈1, label 0 ⇒ large loss
	}
	for r := 0; r < 10; r++ {
		small.X.Set(r, 0, -1) // p≈0, label 0 ⇒ small loss
	}
	lb := m.Loss(big.X, big.Y)
	ls := m.Loss(small.X, small.Y)
	want := (30*lb + 10*ls) / 40
	testutil.AssertWithin(t, "weighted loss", f.GlobalLoss(), want, 1e-12)
}

func TestAggregationIdentityProperty(t *testing.T) {
	// If every client's update is a no-op (0 epochs impossible — use lr so
	// small the params barely move), aggregation of identical models must
	// return the same parameters.
	clients := smallClients(t, 3, 9)
	m := NewLogisticModel(10, 0)
	if err := m.SetParams(randParams(11, 5)); err != nil {
		t.Fatal(err)
	}
	f, err := NewFederation(clients, m, 1, 1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Params()
	f.Round()
	after := f.Global.Params()
	for i := range before {
		if !testutil.Within(after[i], before[i], 1e-6) {
			t.Fatalf("aggregation drifted: %v → %v", before[i], after[i])
		}
	}
}

func randParams(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestFedAvgConverges(t *testing.T) {
	clients := smallClients(t, 5, 11)
	f, err := NewFederation(clients, NewLogisticModel(10, 1e-4), 2, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	initial := f.GlobalLoss()
	res, err := f.TrainUntil(initial*0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not reach ε: final loss %v (initial %v) after %d rounds", res.FinalLoss, initial, res.Rounds)
	}
	if len(res.LossCurve) != res.Rounds {
		t.Fatal("loss curve length mismatch")
	}
	if res.FinalLoss >= initial {
		t.Fatalf("loss did not improve: %v → %v", initial, res.FinalLoss)
	}
}

func TestTrainUntilErrors(t *testing.T) {
	clients := smallClients(t, 2, 13)
	f, _ := NewFederation(clients, NewLogisticModel(10, 0), 1, 0.05, 1)
	if _, err := f.TrainUntil(0, 10); err == nil {
		t.Fatal("ε = 0 accepted")
	}
	if _, err := f.TrainUntil(0.1, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestTrainUntilStopsAtMaxRounds(t *testing.T) {
	clients := smallClients(t, 2, 17)
	f, _ := NewFederation(clients, NewLogisticModel(10, 0), 1, 1e-9, 1)
	res, err := f.TrainUntil(1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Rounds != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWeightedAverageProperty(t *testing.T) {
	// FedAvg of models with constant parameter vectors equals the
	// size-weighted mean of those constants.
	f := func(a, b uint8) bool {
		va, vb := float64(a), float64(b)
		c1 := &Client{X: tensor.NewMatrix(3, 1), Y: []float64{0, 0, 0}}
		c2 := &Client{X: tensor.NewMatrix(1, 1), Y: []float64{0}}
		m := &stubModel{}
		fed, err := NewFederation([]*Client{c1, c2}, m, 1, 0.1, 1)
		if err != nil {
			return false
		}
		m.next = []float64{va, vb} // client 0 returns va, client 1 vb
		fed.Round()
		want := (3*va + 1*vb) / 4
		return testutil.Within(fed.Global.Params()[0], want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// stubModel lets tests force the per-client local models to known values:
// the i-th clone's TrainEpochs sets its parameter to next[i].
type stubModel struct {
	val   float64
	next  []float64
	calls int
	root  *stubModel
}

func (s *stubModel) Loss(X *tensor.Matrix, y []float64) float64 { return s.val }
func (s *stubModel) TrainEpochs(X *tensor.Matrix, y []float64, epochs int, lr float64, rng *rand.Rand) {
	root := s.root
	if root == nil {
		root = s
	}
	if root.calls < len(root.next) {
		s.val = root.next[root.calls]
	}
	root.calls++
}
func (s *stubModel) Params() []float64 { return []float64{s.val} }
func (s *stubModel) SetParams(p []float64) error {
	s.val = p[0]
	return nil
}
func (s *stubModel) Clone() Model {
	root := s.root
	if root == nil {
		root = s
	}
	return &stubModel{val: s.val, root: root}
}
