package fedavg

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// SyntheticConfig controls synthetic-dataset generation for the federated
// clients, standing in for the user data held by real mobile devices.
type SyntheticConfig struct {
	// Clients is N, the number of devices.
	Clients int
	// Dim is the feature dimensionality.
	Dim int
	// SamplesMin/SamplesMax bound each client's dataset size (uniform).
	SamplesMin, SamplesMax int
	// NonIID in [0, 1] shifts each client's feature distribution toward a
	// client-specific center: 0 = IID, 1 = fully clustered.
	NonIID float64
	// LabelNoise flips each label with this probability.
	LabelNoise float64
}

// DefaultSyntheticConfig mirrors a small cross-device deployment.
func DefaultSyntheticConfig(clients int) SyntheticConfig {
	return SyntheticConfig{
		Clients:    clients,
		Dim:        10,
		SamplesMin: 100,
		SamplesMax: 300,
		NonIID:     0.5,
		LabelNoise: 0.05,
	}
}

// Validate checks the configuration.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Clients <= 0:
		return fmt.Errorf("fedavg: clients %d must be positive", c.Clients)
	case c.Dim <= 0:
		return fmt.Errorf("fedavg: dim %d must be positive", c.Dim)
	case c.SamplesMin <= 0 || c.SamplesMax < c.SamplesMin:
		return fmt.Errorf("fedavg: samples range [%d,%d] invalid", c.SamplesMin, c.SamplesMax)
	case c.NonIID < 0 || c.NonIID > 1:
		return fmt.Errorf("fedavg: non-IID degree %v outside [0,1]", c.NonIID)
	case c.LabelNoise < 0 || c.LabelNoise >= 0.5:
		return fmt.Errorf("fedavg: label noise %v outside [0,0.5)", c.LabelNoise)
	}
	return nil
}

// GenerateSynthetic builds clients whose labels come from one shared
// ground-truth linear separator, but whose feature distributions differ per
// client (the heterogeneity federated learning must cope with). It returns
// the clients and the ground-truth weights (dim+1, bias last).
func GenerateSynthetic(cfg SyntheticConfig, seed int64) ([]*Client, []float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, cfg.Dim+1)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	clients := make([]*Client, cfg.Clients)
	for ci := range clients {
		n := cfg.SamplesMin
		if cfg.SamplesMax > cfg.SamplesMin {
			n += rng.Intn(cfg.SamplesMax - cfg.SamplesMin + 1)
		}
		center := make([]float64, cfg.Dim)
		for j := range center {
			center[j] = rng.NormFloat64() * 2 * cfg.NonIID
		}
		X := tensor.NewMatrix(n, cfg.Dim)
		Y := make([]float64, n)
		for r := 0; r < n; r++ {
			z := truth[cfg.Dim]
			for j := 0; j < cfg.Dim; j++ {
				x := center[j]*cfg.NonIID + rng.NormFloat64()
				X.Set(r, j, x)
				z += truth[j] * x
			}
			label := 0.0
			if z > 0 {
				label = 1
			}
			if rng.Float64() < cfg.LabelNoise {
				label = 1 - label
			}
			Y[r] = label
		}
		clients[ci] = &Client{X: X, Y: Y}
	}
	return clients, truth, nil
}
