// Package profiling wires Go's profilers behind command-line flags so perf
// work on the simulator stays profile-guided: -cpuprofile and -memprofile
// feed `go tool pprof`, -trace feeds `go tool trace`. Register the flags
// before flag.Parse, Start after, and defer the returned stop.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profile destinations registered on a flag set. Empty
// paths (the defaults) disable the corresponding profiler.
type Flags struct {
	CPU  *string
	Mem  *string
	Exec *string
}

// Register installs -cpuprofile, -memprofile and -trace on fs (use
// flag.CommandLine for a command's own flags).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		CPU:  fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem:  fs.String("memprofile", "", "write a heap profile to this file at exit"),
		Exec: fs.String("trace", "", "write a runtime execution trace to this file"),
	}
}

// Start begins CPU profiling and execution tracing as requested. The
// returned stop finishes both and writes the heap profile; call it (or
// defer it) on every exit path that should produce profiles. stop is never
// nil and is safe to call when no profiler was requested.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if *f.CPU != "" {
		cpuFile, err = os.Create(*f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if *f.Exec != "" {
		traceFile, err = os.Create(*f.Exec)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	memPath := *f.Mem
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		mf, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer mf.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}
