package hier

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/fl"
)

// Config parameterizes the hierarchical engine around a fleet + topology.
type Config struct {
	// Tau is τ, local training passes per round.
	Tau int
	// ModelBytes is ξ, the uploaded model size in bytes (device → edge).
	ModelBytes float64
	// Lambda is λ, the energy weight in the per-step system cost.
	Lambda float64
	// CohortFrac is the fraction of each region's devices sampled into each
	// round's cohort, in (0, 1]. 1 selects every device (full participation,
	// and the index-order device walk the flat engine uses).
	CohortFrac float64
	// MinArrivals is M: the global step commits as soon as M regional
	// aggregates have arrived. Regions still in flight at the commit are
	// late — their updates stay buffered and are staleness-weighted into
	// the commit that sees them arrive. 0 (or ≥ regions) waits for every
	// region: the fully synchronous two-tier protocol.
	MinArrivals int
	// StalenessBeta is the per-commit decay of a late update's aggregation
	// weight: an update incorporated s commits after its round was
	// dispatched weighs cohortSize·βˢ. 0 selects the default 0.5.
	StalenessBeta float64
	// EdgeLatencySec is the fixed aggregator→cloud upload latency added to
	// every regional round (the edge tier's own uplink; 0 = colocated).
	EdgeLatencySec float64
	// Workers bounds the per-region event loops run in parallel; ≤ 1 runs
	// regions serially. Results are bit-identical at any worker count: each
	// region writes only its own result slot and the merge walks regions in
	// index order (the PR 1 determinism invariant).
	Workers int
	// Seed drives cohort subsampling (a counter-based per-(step, region)
	// stream, so sampling is independent of worker scheduling).
	Seed int64
}

// DefaultStalenessBeta is the late-update weight decay used when
// Config.StalenessBeta is zero.
const DefaultStalenessBeta = 0.5

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Tau <= 0:
		return fmt.Errorf("hier: τ = %d must be positive", c.Tau)
	case c.ModelBytes <= 0 || math.IsNaN(c.ModelBytes) || math.IsInf(c.ModelBytes, 0):
		return fmt.Errorf("hier: model size %v must be positive and finite", c.ModelBytes)
	case c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0):
		return fmt.Errorf("hier: λ = %v must be non-negative and finite", c.Lambda)
	case !(c.CohortFrac > 0) || c.CohortFrac > 1:
		return fmt.Errorf("hier: cohort fraction %v outside (0,1]", c.CohortFrac)
	case c.MinArrivals < 0:
		return fmt.Errorf("hier: M = %d negative", c.MinArrivals)
	case c.StalenessBeta < 0 || c.StalenessBeta > 1 || math.IsNaN(c.StalenessBeta):
		return fmt.Errorf("hier: staleness β = %v outside [0,1]", c.StalenessBeta)
	case c.EdgeLatencySec < 0 || math.IsNaN(c.EdgeLatencySec) || math.IsInf(c.EdgeLatencySec, 0):
		return fmt.Errorf("hier: edge latency %v must be non-negative and finite", c.EdgeLatencySec)
	case c.Workers < 0:
		return fmt.Errorf("hier: %d workers", c.Workers)
	}
	return nil
}

// GlobalStats records one committed global step.
type GlobalStats struct {
	// Index is the global step k (0-based).
	Index int
	// StartTime is the wall-clock time the step's rounds were dispatched.
	StartTime float64
	// Duration is the time from dispatch to commit: the M-th earliest
	// regional arrival. With one region and M=all it equals the flat
	// barrier T^k bit-for-bit.
	Duration float64
	// ComputeEnergy and TxEnergy sum every round dispatched this step
	// (energy is charged at dispatch — that is when the devices work).
	ComputeEnergy, TxEnergy float64
	// Cost is Duration + λ·(ComputeEnergy+TxEnergy), the per-step system
	// cost the DRL reward negates.
	Cost float64
	// Dispatched counts regions that started a round this step; a region
	// still training its previous round sits the dispatch out (it cannot
	// train two models at once).
	Dispatched int
	// Participants is the number of devices that started training this
	// step (Σ cohort sizes over dispatched regions).
	Participants int
	// OnTime counts this step's rounds incorporated at this commit; Late
	// counts regions whose round is still in flight after the commit.
	OnTime, Late int
	// StaleApplied counts updates from earlier steps' rounds incorporated
	// at this commit, and MeanStaleness is the mean age in commits over
	// everything incorporated (0 when only fresh updates applied).
	StaleApplied  int
	MeanStaleness float64
	// UpdateWeight is the commit's total aggregation weight:
	// Σ cohortSize·β^age over incorporated updates. Under the flat barrier
	// this is always N; semi-async trades some of it for speed.
	UpdateWeight float64
}

// TotalEnergy returns the step's summed energy.
func (g *GlobalStats) TotalEnergy() float64 { return g.ComputeEnergy + g.TxEnergy }

// flightEvent is one regional aggregate in flight to the cloud, ordered by
// arrival time with region index as tie-break (a total order, so the commit
// sequence is independent of heap layout).
type flightEvent struct {
	at     float64 // absolute arrival time
	off    float64 // arrival offset from the dispatching step's clock (exact)
	origin int     // global step whose dispatch produced it
	weight float64 // cohort size
	region int32
}

func flightLess(a, b flightEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.region < b.region
}

// Engine drives hierarchical semi-synchronous federation over a fleet. All
// stepping state lives in preallocated scratch: after the first step the
// serial round path performs zero heap allocations (pinned by the
// AllocsPerRun gates). Not safe for concurrent use.
type Engine struct {
	Fleet *Fleet
	Top   Topology
	Cfg   Config

	clock float64
	step  int

	// work caches τ·c_i·D_i per device (the eq. 1 numerator).
	work []float64
	// perm is the per-region cohort-sampling space: region r shuffles
	// perm[lo:hi] in place (disjoint slices, so parallel regions never race).
	perm []int32

	// Per-region round results; workers write only their own index.
	finishOff []float64 // arrival offset of this step's aggregate
	regCE     []float64
	regTE     []float64
	cohortN   []int32
	errs      []error

	// inFlight marks regions whose previous round has not been
	// incorporated yet; they skip the dispatch. Every region is either
	// free or has exactly one event in the heap.
	inFlight []bool
	dispatch []int32 // regions dispatched this step, ascending

	fracs []float64 // planner output (one frequency fraction per region)

	events *fl.Heap[flightEvent]

	nextIdx atomic.Int64
	wg      sync.WaitGroup
}

// NewEngine validates and assembles an engine starting at wall-clock 0.
func NewEngine(fleet *Fleet, top Topology, cfg Config) (*Engine, error) {
	if fleet == nil {
		return nil, fmt.Errorf("hier: nil fleet")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	if err := top.validate(fleet.N()); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StalenessBeta == 0 {
		cfg.StalenessBeta = DefaultStalenessBeta
	}
	n := fleet.N()
	r := top.Regions()
	e := &Engine{
		Fleet:     fleet,
		Top:       top,
		Cfg:       cfg,
		work:      make([]float64, n),
		perm:      make([]int32, n),
		finishOff: make([]float64, r),
		regCE:     make([]float64, r),
		regTE:     make([]float64, r),
		cohortN:   make([]int32, r),
		errs:      make([]error, r),
		inFlight:  make([]bool, r),
		dispatch:  make([]int32, 0, r),
		fracs:     make([]float64, r),
		events:    fl.NewHeap(flightLess, r),
	}
	for i := 0; i < n; i++ {
		// The same expression (and evaluation order) as device.Workload, so
		// the 1-region engine reproduces the flat engine bit-for-bit.
		e.work[i] = float64(cfg.Tau) * fleet.CyclesPerBit[i] * fleet.DataBits[i]
		e.perm[i] = int32(i)
	}
	return e, nil
}

// Reset rewinds the engine to a fresh run starting at startTime.
func (e *Engine) Reset(startTime float64) error {
	if startTime < 0 || math.IsNaN(startTime) || math.IsInf(startTime, 0) {
		return fmt.Errorf("hier: invalid start time %v", startTime)
	}
	e.clock = startTime
	e.step = 0
	for r := range e.inFlight {
		e.inFlight[r] = false
	}
	e.events.Reset()
	return nil
}

// Clock returns the current global wall-clock time.
func (e *Engine) Clock() float64 { return e.clock }

// K returns the number of committed global steps.
func (e *Engine) K() int { return e.step }

// Regions returns the region count.
func (e *Engine) Regions() int { return e.Top.Regions() }

// effectiveM resolves Config.MinArrivals against the region count.
func (e *Engine) effectiveM() int {
	m := e.Cfg.MinArrivals
	if m <= 0 || m > e.Top.Regions() {
		m = e.Top.Regions()
	}
	return m
}

// StepInto runs one global step: the planner prices every region's cohort
// (one frequency fraction per region), each free region dispatches its
// local device-barrier round at the current clock, the global step commits
// at the M-th regional arrival — counting earlier steps' rounds still in
// flight — and every update that has arrived by the commit is incorporated,
// staleness-weighted by β^age. Regions still in flight skip dispatches
// until their round lands. The returned stats are self-contained values
// (nothing aliases engine scratch).
func (e *Engine) StepInto(p CohortPlanner) (GlobalStats, error) {
	if p == nil {
		return GlobalStats{}, fmt.Errorf("hier: nil planner")
	}
	R := e.Top.Regions()
	if err := p.PlanInto(e.fracs, e); err != nil {
		return GlobalStats{}, fmt.Errorf("hier: planner %s: %w", p.Name(), err)
	}
	for r, frac := range e.fracs {
		if !(frac > 0) || frac > 1 {
			return GlobalStats{}, fmt.Errorf("hier: planner %s set region %d fraction %v outside (0,1]", p.Name(), r, frac)
		}
	}

	e.dispatch = e.dispatch[:0]
	for r := 0; r < R; r++ {
		if !e.inFlight[r] {
			e.dispatch = append(e.dispatch, int32(r))
		}
	}
	e.runRegions()
	for _, r := range e.dispatch {
		if err := e.errs[r]; err != nil {
			e.errs[r] = nil
			return GlobalStats{}, err
		}
	}

	// Merge in deterministic region order (dispatch is ascending, and the
	// event heap pops are a total order over (time, region)) — independent
	// of which worker computed what.
	participants := 0
	var cE, tE float64
	for _, r := range e.dispatch {
		e.events.Push(flightEvent{
			at:     e.clock + e.finishOff[r],
			off:    e.finishOff[r],
			origin: e.step,
			weight: float64(e.cohortN[r]),
			region: r,
		})
		e.inFlight[r] = true
		participants += int(e.cohortN[r])
		cE += e.regCE[r]
		tE += e.regTE[r]
	}

	// Every region is either free (just dispatched) or has one event in
	// flight, so the heap holds exactly R events here.
	m := e.effectiveM()
	var commitOff, commitAt, weight float64
	onTime, staleApplied, stalenessSum := 0, 0, 0
	incorporate := func(ev flightEvent) {
		e.inFlight[ev.region] = false
		age := e.step - ev.origin
		if age == 0 {
			onTime++
			weight += ev.weight
		} else {
			staleApplied++
			stalenessSum += age
			weight += ev.weight * math.Pow(e.Cfg.StalenessBeta, float64(age))
		}
	}
	for i := 0; i < m; i++ {
		ev := e.events.Pop()
		commitAt = ev.at
		if ev.origin == e.step {
			// The exact dispatch-relative offset: with one region and M=all
			// this is the flat barrier T^k bit-for-bit (no (clock+T)−clock
			// round trip).
			commitOff = ev.off
		} else {
			commitOff = ev.at - e.clock
		}
		incorporate(ev)
	}
	// Anything else that has arrived by the commit lands now too.
	for e.events.Len() > 0 && e.events.Peek().at <= commitAt {
		incorporate(e.events.Pop())
	}
	late := e.events.Len()

	meanStale := 0.0
	if applied := onTime + staleApplied; applied > 0 && stalenessSum > 0 {
		meanStale = float64(stalenessSum) / float64(applied)
	}

	stats := GlobalStats{
		Index:         e.step,
		StartTime:     e.clock,
		Duration:      commitOff,
		ComputeEnergy: cE,
		TxEnergy:      tE,
		Cost:          commitOff + e.Cfg.Lambda*(cE+tE),
		Dispatched:    len(e.dispatch),
		Participants:  participants,
		OnTime:        onTime,
		Late:          late,
		StaleApplied:  staleApplied,
		MeanStaleness: meanStale,
		UpdateWeight:  weight,
	}
	e.clock += commitOff
	e.step++
	return stats, nil
}

// runRegions executes every dispatched region's round, serially or on a
// bounded worker pool. Each region writes only its own result slots, so
// results are bit-identical at any worker count.
func (e *Engine) runRegions() {
	d := len(e.dispatch)
	w := e.Cfg.Workers
	if w > d {
		w = d
	}
	if w <= 1 {
		for _, r := range e.dispatch {
			e.regionRound(int(r))
		}
		return
	}
	e.nextIdx.Store(0)
	e.wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer e.wg.Done()
			for {
				i := int(e.nextIdx.Add(1)) - 1
				if i >= d {
					return
				}
				e.regionRound(int(e.dispatch[i]))
			}
		}()
	}
	e.wg.Wait()
}

// regionRound simulates region r's local round dispatched at the current
// clock: cohort selection, per-device compute+upload timing against the
// shared trace pool, the regional device barrier, and the aggregator's
// uplink to the cloud. The per-device arithmetic mirrors fl.RunIterationOpts
// expression by expression so the 1-region engine stays bit-identical to
// the flat barrier.
func (e *Engine) regionRound(r int) {
	lo, hi := e.Top.Region(r)
	size := hi - lo
	frac := e.fracs[r]
	start := e.clock
	fleet := e.Fleet
	bytes := e.Cfg.ModelBytes

	full := e.Cfg.CohortFrac >= 1
	c := size
	if !full {
		c = int(e.Cfg.CohortFrac*float64(size) + 0.5)
		if c < 1 {
			c = 1
		}
		if c > size {
			c = size
		}
		// Partial Fisher–Yates over the region's slice of the permutation
		// space: the first c entries become a uniform sample without
		// replacement. The stream is counter-based in (seed, step, region),
		// so the draw is independent of worker scheduling.
		st := sampleSeed(e.Cfg.Seed, e.step, r)
		p := e.perm[lo:hi]
		for i := 0; i < c; i++ {
			j := i + int(nextRand(&st)%uint64(size-i))
			p[i], p[j] = p[j], p[i]
		}
	}

	var dur, cE, tE float64
	for k := 0; k < c; k++ {
		i := lo + k
		if !full {
			i = int(e.perm[lo+k])
		}
		f := frac * fleet.MaxFreqHz[i]
		tcmp := e.work[i] / f
		upStart := start + tcmp
		tr := fleet.Pool[fleet.TraceIdx[i]]
		ph := fleet.Phase[i]
		upEnd, err := tr.UploadFinish(upStart+ph, bytes)
		if err != nil {
			e.errs[r] = fmt.Errorf("hier: region %d device %d upload: %w", r, i, err)
			return
		}
		tcom := (upEnd - ph) - upStart
		total := tcmp + tcom
		if total > dur {
			dur = total
		}
		cE += fleet.Alpha[i] * e.work[i] * f * f
		tE += fleet.TxPerSec[i] * tcom
	}

	e.finishOff[r] = dur + e.Cfg.EdgeLatencySec
	e.cohortN[r] = int32(c)
	e.regCE[r] = cE
	e.regTE[r] = tE
}

// sampleSeed derives the counter-based RNG state for one (seed, step,
// region) cohort draw.
func sampleSeed(seed int64, step, region int) uint64 {
	return mix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(step)*0xbf58476d1ce4e5b9 ^ uint64(region)*0x94d049bb133111eb)
}

// nextRand advances a splitmix64 stream.
func nextRand(st *uint64) uint64 {
	*st += 0x9e3779b97f4a7c15
	return mix64(*st)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
