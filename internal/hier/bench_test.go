package hier

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/fl"
)

// Benchmark fixtures are cached per fleet size: building a million-device
// fleet is setup cost, not the thing under measurement.
var (
	benchMu     sync.Mutex
	benchFleets = map[int]*Fleet{}
)

func benchFleet(b *testing.B, n int) *Fleet {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if f, ok := benchFleets[n]; ok {
		return f
	}
	f, err := NewFleet(n, FleetOptions{PoolSize: 64, AlignPhases: true}, 47)
	if err != nil {
		b.Fatalf("NewFleet(%d): %v", n, err)
	}
	benchFleets[n] = f
	return f
}

func benchEngine(b *testing.B, n, regions int, cohortFrac float64, minArrivals, workers int) *Engine {
	b.Helper()
	top, err := EvenTopology(n, regions)
	if err != nil {
		b.Fatalf("EvenTopology: %v", err)
	}
	eng, err := NewEngine(benchFleet(b, n), top, Config{
		Tau: 1, ModelBytes: 5e5, Lambda: 1e-3,
		CohortFrac: cohortFrac, MinArrivals: minArrivals,
		Workers: workers, Seed: 61,
	})
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// BenchmarkFlatBarrier100k is the baseline: the flat synchronous engine's
// per-round cost at N=100k — every round as slow as all N devices.
func BenchmarkFlatBarrier100k(b *testing.B) {
	fleet := benchFleet(b, 100_000)
	sys, err := fleet.System(1, 5e5, 1e-3)
	if err != nil {
		b.Fatalf("System: %v", err)
	}
	ses, err := fl.NewSession(sys, 0)
	if err != nil {
		b.Fatalf("NewSession: %v", err)
	}
	freqs := make([]float64, fleet.N())
	for i := range freqs {
		freqs[i] = 0.6 * fleet.MaxFreqHz[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.StepInto(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierSync100k runs the same population through the two-tier
// engine with full cohorts and a full barrier — the speedup here is pure
// parallelism over regions.
func BenchmarkHierSync100k(b *testing.B) {
	eng := benchEngine(b, 100_000, 64, 1, 0, runtime.GOMAXPROCS(0))
	var planner CohortPlanner = FixedPlanner{Frac: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.StepInto(planner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierCohort100k adds 5% cohort subsampling and a 75%-arrival
// semi-sync commit — the same protocol configuration the 1M benchmark and
// the experiments sweep use.
func BenchmarkHierCohort100k(b *testing.B) {
	eng := benchEngine(b, 100_000, 64, 0.05, 48, runtime.GOMAXPROCS(0))
	var planner CohortPlanner = FixedPlanner{Frac: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.StepInto(planner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierCohort1M is the headline: a million devices in 1024 regions
// with 5% cohorts at a 75%-arrival commit.
func BenchmarkHierCohort1M(b *testing.B) {
	eng := benchEngine(b, 1_000_000, 1024, 0.05, 768, runtime.GOMAXPROCS(0))
	var planner CohortPlanner = FixedPlanner{Frac: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.StepInto(planner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierSync1MSerial pins the serial zero-alloc full-participation
// path at N=1M (the AllocsPerRun contract's scaling check).
func BenchmarkHierSync1MSerial(b *testing.B) {
	eng := benchEngine(b, 1_000_000, 1024, 1, 0, 1)
	var planner CohortPlanner = FixedPlanner{Frac: 0.6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.StepInto(planner); err != nil {
			b.Fatal(err)
		}
	}
}
