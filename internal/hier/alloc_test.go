//go:build !race

// Allocation-regression gates for the hierarchical round path (DESIGN.md
// §10). The race detector instruments allocations, so these gates only run
// in normal test mode — mirroring internal/trace/alloc_test.go.
package hier

import (
	"testing"
)

// benchEngine assembles a moderately sized engine for the alloc gates.
func allocEngine(t *testing.T, cohortFrac float64, minArrivals int) *Engine {
	t.Helper()
	fleet, err := NewFleet(400, FleetOptions{PoolSize: 16, TraceSec: 600}, 19)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	top, err := EvenTopology(400, 8)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	eng, err := NewEngine(fleet, top, Config{
		Tau: 1, ModelBytes: 3e5, Lambda: 1e-3,
		CohortFrac: cohortFrac, MinArrivals: minArrivals, Seed: 23,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// TestStepIntoAllocFree pins the serial steady-state round path at zero
// heap allocations, for both the synchronous full-cohort protocol and the
// subsampled semi-async one.
func TestStepIntoAllocFree(t *testing.T) {
	cases := []struct {
		name        string
		cohortFrac  float64
		minArrivals int
	}{
		{"sync-full", 1, 0},
		{"semi-cohort", 0.25, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := allocEngine(t, tc.cohortFrac, tc.minArrivals)
			// Convert to the interface once: boxing a value planner per call
			// would charge the gate an allocation the engine doesn't make.
			var planner CohortPlanner = FixedPlanner{Frac: 0.6}
			// Warm the lazy trace indices and heap capacity.
			for k := 0; k < 5; k++ {
				if _, err := eng.StepInto(planner); err != nil {
					t.Fatalf("warmup step %d: %v", k, err)
				}
			}
			avg := testing.AllocsPerRun(50, func() {
				if _, err := eng.StepInto(planner); err != nil {
					t.Fatalf("StepInto: %v", err)
				}
			})
			if avg != 0 {
				t.Fatalf("StepInto allocates %v objects per step in steady state, want 0", avg)
			}
		})
	}
}

// TestRegionStateIntoAllocFree pins the region-observation builder at zero
// steady-state allocations with adequate buffers.
func TestRegionStateIntoAllocFree(t *testing.T) {
	eng := allocEngine(t, 1, 0)
	cfg := StateConfig{SlotSec: 10, History: 5, BWScale: 5e6}
	state, scratch, err := eng.RegionStateInto(nil, nil, cfg)
	if err != nil {
		t.Fatalf("RegionStateInto: %v", err)
	}
	avg := testing.AllocsPerRun(50, func() {
		state, scratch, err = eng.RegionStateInto(state, scratch, cfg)
		if err != nil {
			t.Fatalf("RegionStateInto: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("RegionStateInto allocates %v objects per call in steady state, want 0", avg)
	}
}

// TestHeuristicPlanAllocFree pins the precomputed planner's per-step plan
// at zero allocations.
func TestHeuristicPlanAllocFree(t *testing.T) {
	eng := allocEngine(t, 1, 0)
	hp, err := NewHeuristicPlanner(eng, 0.05)
	if err != nil {
		t.Fatalf("NewHeuristicPlanner: %v", err)
	}
	for k := 0; k < 3; k++ {
		if _, err := eng.StepInto(hp); err != nil {
			t.Fatalf("warmup step %d: %v", k, err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := eng.StepInto(hp); err != nil {
			t.Fatalf("StepInto: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("heuristic StepInto allocates %v objects per step, want 0", avg)
	}
}
