package hier

import (
	"math"
	"testing"

	"repro/internal/fl"
)

// testFleet draws a small aligned-phase fleet usable by both engines.
func testFleet(t *testing.T, n int, seed int64) *Fleet {
	t.Helper()
	f, err := NewFleet(n, FleetOptions{PoolSize: 8, TraceSec: 600, AlignPhases: true}, seed)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	return f
}

// TestHierMatchesFlatBitIdentical is the tentpole's differential gate: with
// one region, full cohorts and M = all, the hierarchical engine must
// reproduce the flat synchronous engine bit-for-bit — same Duration, same
// energy split, same Cost, same clock — over a multi-step run with varying
// frequency fractions. Any FP reordering in the region loop breaks this.
func TestHierMatchesFlatBitIdentical(t *testing.T) {
	const (
		n          = 40
		tau        = 2
		modelBytes = 5e5
		lambda     = 1e-3
		steps      = 12
	)
	fleet := testFleet(t, n, 31)
	sys, err := fleet.System(tau, modelBytes, lambda)
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	ses, err := fl.NewSession(sys, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	top, err := EvenTopology(n, 1)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	eng, err := NewEngine(fleet, top, Config{
		Tau: tau, ModelBytes: modelBytes, Lambda: lambda,
		CohortFrac: 1, MinArrivals: 0, // synchronous: wait for the single region
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	freqs := make([]float64, n)
	for k := 0; k < steps; k++ {
		frac := 0.3 + 0.05*float64(k)
		for i, d := range sys.Devices {
			freqs[i] = frac * d.MaxFreqHz
		}
		flat, err := ses.StepInto(freqs)
		if err != nil {
			t.Fatalf("step %d: flat: %v", k, err)
		}
		h, err := eng.StepInto(FixedPlanner{Frac: frac})
		if err != nil {
			t.Fatalf("step %d: hier: %v", k, err)
		}
		// == on float64, not a tolerance: the contract is bit-identity.
		if h.Index != flat.Index || h.StartTime != flat.StartTime || h.Duration != flat.Duration ||
			h.ComputeEnergy != flat.ComputeEnergy || h.TxEnergy != flat.TxEnergy || h.Cost != flat.Cost {
			t.Fatalf("step %d diverged:\nhier %+v\nflat %+v", k, h, flat)
		}
		if h.Participants != n || h.OnTime != 1 || h.Late != 0 || h.StaleApplied != 0 {
			t.Fatalf("step %d: unexpected semi-async stats in sync mode: %+v", k, h)
		}
		if eng.Clock() != ses.Clock {
			t.Fatalf("step %d: clock diverged: hier %v flat %v", k, eng.Clock(), ses.Clock)
		}
	}
}

// TestWorkerCountInvariance pins the PR 1 determinism invariant at the new
// layer: every worker count must produce bit-identical global stats, cohort
// draws included.
func TestWorkerCountInvariance(t *testing.T) {
	const (
		n     = 300
		steps = 10
	)
	cfgFor := func(workers int) Config {
		return Config{
			Tau: 1, ModelBytes: 3e5, Lambda: 1e-3,
			CohortFrac: 0.5, MinArrivals: 5, StalenessBeta: 0.5,
			EdgeLatencySec: 2, Workers: workers, Seed: 99,
		}
	}
	run := func(workers int) []GlobalStats {
		fleet, err := NewFleet(n, FleetOptions{PoolSize: 16, TraceSec: 600}, 7)
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		top, err := EvenTopology(n, 8)
		if err != nil {
			t.Fatalf("EvenTopology: %v", err)
		}
		eng, err := NewEngine(fleet, top, cfgFor(workers))
		if err != nil {
			t.Fatalf("NewEngine(workers=%d): %v", workers, err)
		}
		out := make([]GlobalStats, steps)
		for k := range out {
			st, err := eng.StepInto(FixedPlanner{Frac: 0.6})
			if err != nil {
				t.Fatalf("workers=%d step %d: %v", workers, k, err)
			}
			out[k] = st
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 16} {
		got := run(workers)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers=%d step %d diverged:\ngot  %+v\nwant %+v", workers, k, got[k], want[k])
			}
		}
	}
}

// TestSemiAsyncCommitsEarlyAndBuffersLate makes one region pathologically
// slow and checks the protocol semantics: the commit happens at the M-th
// arrival (faster than the full barrier), the slow region is late, and its
// update is eventually incorporated with positive staleness at β-decayed
// weight.
func TestSemiAsyncCommitsEarlyAndBuffersLate(t *testing.T) {
	const (
		n       = 120
		regions = 4
	)
	build := func(minArrivals int) *Engine {
		fleet, err := NewFleet(n, FleetOptions{PoolSize: 8, TraceSec: 600}, 13)
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		top, err := EvenTopology(n, regions)
		if err != nil {
			t.Fatalf("EvenTopology: %v", err)
		}
		// Last region trains 8× more data: its rounds dominate the barrier.
		lo, hi := top.Region(regions - 1)
		for i := lo; i < hi; i++ {
			fleet.DataBits[i] *= 8
		}
		eng, err := NewEngine(fleet, top, Config{
			Tau: 1, ModelBytes: 3e5, Lambda: 1e-3,
			CohortFrac: 1, MinArrivals: minArrivals, StalenessBeta: 0.5, Seed: 5,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return eng
	}

	sync := build(regions) // full barrier
	semi := build(regions - 1)

	syncStat, err := sync.StepInto(FixedPlanner{Frac: 0.8})
	if err != nil {
		t.Fatalf("sync step: %v", err)
	}
	semiStat, err := semi.StepInto(FixedPlanner{Frac: 0.8})
	if err != nil {
		t.Fatalf("semi step: %v", err)
	}
	if semiStat.Duration >= syncStat.Duration {
		t.Fatalf("semi-async commit %v not faster than full barrier %v", semiStat.Duration, syncStat.Duration)
	}
	if semiStat.OnTime != regions-1 || semiStat.Late != 1 {
		t.Fatalf("first semi step: OnTime=%d Late=%d, want %d/1", semiStat.OnTime, semiStat.Late, regions-1)
	}
	if semiStat.UpdateWeight >= syncStat.UpdateWeight {
		t.Fatalf("semi commit weight %v should be below full-participation %v", semiStat.UpdateWeight, syncStat.UpdateWeight)
	}

	// Keep stepping: the slow region must sit out dispatches while its round
	// is in flight, and its buffered update must eventually land with
	// positive staleness at a β-decayed weight.
	const perRegion = n / regions
	applied := false
	for k := 0; k < 60 && !applied; k++ {
		st, err := semi.StepInto(FixedPlanner{Frac: 0.8})
		if err != nil {
			t.Fatalf("semi step %d: %v", k, err)
		}
		if st.Late > 0 && st.Dispatched != regions-1 {
			t.Fatalf("step %d: %d regions dispatched while %d in flight, want %d: %+v",
				k, st.Dispatched, st.Late, regions-1, st)
		}
		if st.StaleApplied > 0 {
			applied = true
			if st.MeanStaleness <= 0 {
				t.Fatalf("stale update applied with non-positive staleness: %+v", st)
			}
			// Decay must bite: the commit weighs more than the fresh rounds
			// alone but strictly less than full-weight incorporation.
			lo := float64(st.OnTime * perRegion)
			hi := float64((st.OnTime + st.StaleApplied) * perRegion)
			if !(st.UpdateWeight > lo) || !(st.UpdateWeight < hi) {
				t.Fatalf("update weight %v outside (%v, %v): %+v", st.UpdateWeight, lo, hi, st)
			}
		}
		if st.Duration <= 0 || math.IsNaN(st.Duration) {
			t.Fatalf("invalid duration at step %d: %+v", k, st)
		}
	}
	if !applied {
		t.Fatal("slow region's buffered update was never incorporated")
	}
}

// TestCohortSampling checks cohort sizes, seed determinism, and that the
// sampler actually varies the draw across steps and seeds.
func TestCohortSampling(t *testing.T) {
	const (
		n       = 200
		regions = 5
	)
	build := func(seed int64) *Engine {
		fleet, err := NewFleet(n, FleetOptions{PoolSize: 8, TraceSec: 600}, 3)
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		top, err := EvenTopology(n, regions)
		if err != nil {
			t.Fatalf("EvenTopology: %v", err)
		}
		eng, err := NewEngine(fleet, top, Config{
			Tau: 1, ModelBytes: 3e5, Lambda: 1e-3,
			CohortFrac: 0.25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return eng
	}

	a, b := build(42), build(42)
	other := build(43)
	var aDur, otherDur []float64
	for k := 0; k < 8; k++ {
		sa, err := a.StepInto(FixedPlanner{Frac: 0.7})
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		sb, _ := b.StepInto(FixedPlanner{Frac: 0.7})
		so, _ := other.StepInto(FixedPlanner{Frac: 0.7})
		if sa != sb {
			t.Fatalf("same seed diverged at step %d:\n%+v\n%+v", k, sa, sb)
		}
		// 200 devices × 0.25 = 10 per 40-device region.
		if want := regions * 10; sa.Participants != want {
			t.Fatalf("step %d: %d participants, want %d", k, sa.Participants, want)
		}
		aDur = append(aDur, sa.Duration)
		otherDur = append(otherDur, so.Duration)
	}
	same := true
	for k := range aDur {
		if aDur[k] != otherDur[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical durations — sampler is not seeded")
	}
}

// TestEngineValidation exercises the construction and stepping guards.
func TestEngineValidation(t *testing.T) {
	fleet := testFleet(t, 10, 1)
	top, err := EvenTopology(10, 2)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	good := Config{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1}

	bad := []Config{
		{Tau: 0, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1},
		{Tau: 1, ModelBytes: 0, Lambda: 1e-3, CohortFrac: 1},
		{Tau: 1, ModelBytes: 1e5, Lambda: -1, CohortFrac: 1},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 0},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1.5},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1, MinArrivals: -1},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1, EdgeLatencySec: -1},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1, StalenessBeta: 2},
		{Tau: 1, ModelBytes: 1e5, Lambda: 1e-3, CohortFrac: 1, Workers: -1},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(fleet, top, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}

	eng, err := NewEngine(fleet, top, good)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.StepInto(nil); err == nil {
		t.Error("nil planner accepted")
	}
	if _, err := eng.StepInto(FixedPlanner{Frac: 0}); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := eng.StepInto(FixedPlanner{Frac: 2}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if err := eng.Reset(-1); err == nil {
		t.Error("negative reset time accepted")
	}
	if err := eng.Reset(5); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if eng.Clock() != 5 || eng.K() != 0 {
		t.Fatalf("Reset left clock=%v k=%d", eng.Clock(), eng.K())
	}
}

// TestHeuristicPlanner checks the precomputed fractions stay in range and
// the plan is stable across steps.
func TestHeuristicPlanner(t *testing.T) {
	fleet := testFleet(t, 30, 9)
	top, err := EvenTopology(30, 3)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	eng, err := NewEngine(fleet, top, Config{Tau: 1, ModelBytes: 3e5, Lambda: 1e-3, CohortFrac: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	hp, err := NewHeuristicPlanner(eng, 0.05)
	if err != nil {
		t.Fatalf("NewHeuristicPlanner: %v", err)
	}
	fracs := make([]float64, top.Regions())
	if err := hp.PlanInto(fracs, eng); err != nil {
		t.Fatalf("PlanInto: %v", err)
	}
	for r, f := range fracs {
		if !(f >= 0.05) || f > 1 {
			t.Fatalf("region %d fraction %v outside [0.05, 1]", r, f)
		}
	}
	if _, err := eng.StepInto(hp); err != nil {
		t.Fatalf("StepInto(heuristic): %v", err)
	}
	if _, err := NewHeuristicPlanner(eng, 0); err == nil {
		t.Error("minFrac 0 accepted")
	}
	if _, err := NewHeuristicPlanner(nil, 0.05); err == nil {
		t.Error("nil engine accepted")
	}
}

// TestRegionStateInto checks the observation's shape, finiteness, and
// buffer-reuse contract.
func TestRegionStateInto(t *testing.T) {
	fleet, err := NewFleet(80, FleetOptions{PoolSize: 8, TraceSec: 600}, 17)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	top, err := EvenTopology(80, 4)
	if err != nil {
		t.Fatalf("EvenTopology: %v", err)
	}
	eng, err := NewEngine(fleet, top, Config{Tau: 1, ModelBytes: 3e5, Lambda: 1e-3, CohortFrac: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := StateConfig{SlotSec: 10, History: 5, BWScale: 5e6, Probes: 3}
	state, scratch, err := eng.RegionStateInto(nil, nil, cfg)
	if err != nil {
		t.Fatalf("RegionStateInto: %v", err)
	}
	if want := top.Regions() * cfg.Width(); len(state) != want {
		t.Fatalf("state length %d, want %d", len(state), want)
	}
	nonZero := false
	for i, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("state[%d] = %v", i, v)
		}
		if v > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("state is all zero — probes read no bandwidth")
	}
	// Reuse must return the same backing arrays.
	state2, scratch2, err := eng.RegionStateInto(state, scratch, cfg)
	if err != nil {
		t.Fatalf("RegionStateInto (reuse): %v", err)
	}
	if &state2[0] != &state[0] || &scratch2[0] != &scratch[0] {
		t.Fatal("adequate buffers were reallocated")
	}
	if _, _, err := eng.RegionStateInto(nil, nil, StateConfig{SlotSec: 0}); err == nil {
		t.Error("zero slot width accepted")
	}
}

// TestFromSystemRoundTrip checks Fleet ↔ System conversion preserves the
// population, and that System refuses phased fleets.
func TestFromSystemRoundTrip(t *testing.T) {
	fleet := testFleet(t, 25, 23)
	sys, err := fleet.System(2, 4e5, 1e-3)
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	back, err := FromSystem(sys)
	if err != nil {
		t.Fatalf("FromSystem: %v", err)
	}
	for i := 0; i < fleet.N(); i++ {
		if back.DataBits[i] != fleet.DataBits[i] || back.MaxFreqHz[i] != fleet.MaxFreqHz[i] ||
			back.CyclesPerBit[i] != fleet.CyclesPerBit[i] || back.Alpha[i] != fleet.Alpha[i] {
			t.Fatalf("device %d params changed in round trip", i)
		}
	}
	phased, err := NewFleet(10, FleetOptions{PoolSize: 4, TraceSec: 600}, 29)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if _, err := phased.System(1, 1e5, 0); err == nil {
		t.Fatal("System accepted a fleet with nonzero replay phases")
	}
}
