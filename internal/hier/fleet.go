// Package hier is the hierarchical federation engine: edge→cloud two-tier
// FedAvg (devices → regional aggregators → global server) with per-round
// cohort subsampling and a buffered semi-synchronous protocol — the global
// step commits after the first M regional arrivals, and late arrivals are
// staleness-weighted into the next step. It exists to break the paper's
// synchronous barrier T^k = max_i T_i^k, which makes every round as slow as
// the slowest of N devices and caps the flat engine at toy fleet sizes.
//
// Performance is the point: device state is struct-of-arrays (no per-device
// heap objects at N=1M), traces are a shared pool replayed at per-device
// phase offsets, per-region event loops run on a bounded worker pool with a
// deterministic region-order merge (bit-identical at any worker count, the
// PR 1 invariant), and the steady-state round path performs zero heap
// allocations (the DESIGN.md §10 contract). With one region, full cohorts
// and M = all regions the engine is bit-identical to the flat
// fl.RunIteration, pinned by differential tests.
package hier

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/trace"
)

// Fleet is the struct-of-arrays form of a device population. Where the flat
// engine holds one *device.Device and one *trace.Trace per device, a Fleet
// stores each parameter as a flat column and shares a small pool of traces
// across the population (device i replays Pool[TraceIdx[i]] shifted by
// Phase[i] seconds), so a million-device fleet is a handful of contiguous
// arrays instead of a million heap objects.
type Fleet struct {
	// DataBits, CyclesPerBit, MaxFreqHz, Alpha and TxPerSec are the §V-A
	// device parameters (D_i, c_i, δ_i^max, α_i, e_i), one entry per device.
	DataBits     []float64
	CyclesPerBit []float64
	MaxFreqHz    []float64
	Alpha        []float64
	TxPerSec     []float64

	// Pool holds the distinct bandwidth traces shared by the fleet.
	Pool []*trace.Trace
	// TraceIdx maps each device to its pool trace.
	TraceIdx []int32
	// Phase is each device's replay offset in seconds: device i's bandwidth
	// at wall-clock t is Pool[TraceIdx[i]] evaluated at t + Phase[i], so
	// devices sharing a trace still see decorrelated link conditions.
	Phase []float64
}

// FleetOptions configures random fleet generation. The zero value takes the
// paper's §V-A parameter distributions, a 64-trace walking-profile pool of
// 4000-second traces, and random replay phases.
type FleetOptions struct {
	// Params are the device parameter distributions (§V-A when zero).
	Params device.FleetParams
	// PoolSize is the number of distinct traces to generate (default 64).
	PoolSize int
	// TraceSec is the generated trace length in seconds (default 4000).
	TraceSec float64
	// AlignPhases forces every Phase to zero. Required when the fleet will
	// be materialized into a flat fl.System for differential comparison —
	// the flat engine has no notion of replay phase.
	AlignPhases bool
}

// NewFleet draws an n-device fleet with parameters distributed per §V-A,
// traces cycling through the walking profiles, seeded deterministically.
func NewFleet(n int, opts FleetOptions, seed int64) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hier: fleet size %d must be positive", n)
	}
	poolSize := opts.PoolSize
	if poolSize <= 0 {
		poolSize = 64
	}
	if poolSize > n {
		poolSize = n
	}
	traceSec := opts.TraceSec
	if traceSec <= 0 {
		traceSec = 4000
	}
	p := opts.Params.WithDefaults()
	if p.DataMBMax < p.DataMBMin || p.CyclesMax < p.CyclesMin || p.FreqGHzMax < p.FreqGHzMin {
		return nil, fmt.Errorf("hier: inverted parameter range in %+v", p)
	}

	profiles := bandwidth.WalkingProfiles()
	pool := make([]*trace.Trace, poolSize)
	for i := range pool {
		prof := profiles[i%len(profiles)]
		tr, err := prof.Generate(fmt.Sprintf("%s-pool%03d", prof.Name, i), traceSec, seed+int64(i)*10007)
		if err != nil {
			return nil, err
		}
		pool[i] = tr
	}

	rng := rand.New(rand.NewSource(seed))
	uniform := func(lo, hi float64) float64 {
		if hi == lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	f := &Fleet{
		DataBits:     make([]float64, n),
		CyclesPerBit: make([]float64, n),
		MaxFreqHz:    make([]float64, n),
		Alpha:        make([]float64, n),
		TxPerSec:     make([]float64, n),
		Pool:         pool,
		TraceIdx:     make([]int32, n),
		Phase:        make([]float64, n),
	}
	for i := 0; i < n; i++ {
		f.DataBits[i] = uniform(p.DataMBMin, p.DataMBMax) * device.BitsPerMB
		f.CyclesPerBit[i] = uniform(p.CyclesMin, p.CyclesMax)
		f.MaxFreqHz[i] = uniform(p.FreqGHzMin, p.FreqGHzMax) * device.GHz
		f.Alpha[i] = p.Alpha
		f.TxPerSec[i] = p.TxEnergyPerSec
		f.TraceIdx[i] = int32(i % poolSize)
		if !opts.AlignPhases {
			f.Phase[i] = rng.Float64() * pool[f.TraceIdx[i]].Duration()
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FromSystem builds the SoA view of a flat fl.System: one pool entry per
// device trace, identity trace mapping, zero phases. The fleet aliases the
// system's traces (they are read-only once in use), so the two engines
// observe bit-identical bandwidth — the substrate of the differential tests.
func FromSystem(sys *fl.System) (*Fleet, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := sys.N()
	f := &Fleet{
		DataBits:     make([]float64, n),
		CyclesPerBit: make([]float64, n),
		MaxFreqHz:    make([]float64, n),
		Alpha:        make([]float64, n),
		TxPerSec:     make([]float64, n),
		Pool:         append([]*trace.Trace(nil), sys.Traces...),
		TraceIdx:     make([]int32, n),
		Phase:        make([]float64, n),
	}
	for i, d := range sys.Devices {
		f.DataBits[i] = d.DataBits
		f.CyclesPerBit[i] = d.CyclesPerBit
		f.MaxFreqHz[i] = d.MaxFreqHz
		f.Alpha[i] = d.Alpha
		f.TxPerSec[i] = d.TxEnergyPerSec
		f.TraceIdx[i] = int32(i)
	}
	return f, nil
}

// System materializes the fleet into a flat fl.System (device structs plus
// shared trace pointers) so the same population can run under the flat
// barrier engine for comparison. It refuses fleets with nonzero phases: the
// flat engine cannot express a replay offset, and silently dropping it
// would make the comparison dishonest.
func (f *Fleet) System(tau int, modelBytes, lambda float64) (*fl.System, error) {
	n := f.N()
	devs := make([]*device.Device, n)
	traces := make([]*trace.Trace, n)
	for i := 0; i < n; i++ {
		if f.Phase[i] != 0 {
			return nil, fmt.Errorf("hier: device %d has replay phase %v; flat systems need AlignPhases fleets", i, f.Phase[i])
		}
		devs[i] = &device.Device{
			ID:             i,
			DataBits:       f.DataBits[i],
			CyclesPerBit:   f.CyclesPerBit[i],
			MaxFreqHz:      f.MaxFreqHz[i],
			Alpha:          f.Alpha[i],
			TxEnergyPerSec: f.TxPerSec[i],
		}
		traces[i] = f.Pool[f.TraceIdx[i]]
	}
	sys := &fl.System{Devices: devs, Traces: traces, Tau: tau, ModelBytes: modelBytes, Lambda: lambda}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// N returns the number of devices.
func (f *Fleet) N() int { return len(f.MaxFreqHz) }

// Validate checks the fleet's columns for consistency.
func (f *Fleet) Validate() error {
	n := f.N()
	if n == 0 {
		return fmt.Errorf("hier: empty fleet")
	}
	for _, col := range [][]float64{f.DataBits, f.CyclesPerBit, f.Alpha, f.TxPerSec, f.Phase} {
		if len(col) != n {
			return fmt.Errorf("hier: column length %d, want %d", len(col), n)
		}
	}
	if len(f.TraceIdx) != n {
		return fmt.Errorf("hier: trace index length %d, want %d", len(f.TraceIdx), n)
	}
	if len(f.Pool) == 0 {
		return fmt.Errorf("hier: empty trace pool")
	}
	for i, tr := range f.Pool {
		if tr == nil {
			return fmt.Errorf("hier: pool trace %d is nil", i)
		}
		if tr.Integrate(0, tr.Duration()) <= 0 {
			return fmt.Errorf("hier: pool trace %d (%s) moves no bytes per cycle; uploads would never finish", i, tr.Name)
		}
	}
	for i := 0; i < n; i++ {
		switch {
		case f.DataBits[i] <= 0:
			return fmt.Errorf("hier: device %d non-positive dataset size %v", i, f.DataBits[i])
		case f.CyclesPerBit[i] <= 0:
			return fmt.Errorf("hier: device %d non-positive cycles/bit %v", i, f.CyclesPerBit[i])
		case f.MaxFreqHz[i] <= 0:
			return fmt.Errorf("hier: device %d non-positive max frequency %v", i, f.MaxFreqHz[i])
		case f.Alpha[i] <= 0:
			return fmt.Errorf("hier: device %d non-positive capacitance %v", i, f.Alpha[i])
		case f.TxPerSec[i] < 0:
			return fmt.Errorf("hier: device %d negative tx energy %v", i, f.TxPerSec[i])
		case int(f.TraceIdx[i]) >= len(f.Pool) || f.TraceIdx[i] < 0:
			return fmt.Errorf("hier: device %d trace index %d outside pool of %d", i, f.TraceIdx[i], len(f.Pool))
		case f.Phase[i] < 0 || math.IsNaN(f.Phase[i]) || math.IsInf(f.Phase[i], 0):
			return fmt.Errorf("hier: device %d invalid phase %v", i, f.Phase[i])
		}
	}
	return nil
}
