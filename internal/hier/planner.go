package hier

import (
	"fmt"
	"math"
)

// CohortPlanner prices a whole region with one decision: it fills dst with
// one frequency fraction per region (each in (0,1], scaling every cohort
// device's δ_i^max). This is the cohort-level analogue of sched.Scheduler —
// at N=1M per-device decisions are neither affordable nor useful, so the
// control surface is the region.
type CohortPlanner interface {
	// Name identifies the planner in reports.
	Name() string
	// PlanInto fills dst (length e.Regions()) with frequency fractions for
	// the upcoming global step. Implementations may read the engine's
	// fleet, topology, clock and step counter but must not mutate it.
	PlanInto(dst []float64, e *Engine) error
}

// FixedPlanner applies one constant fraction to every region.
type FixedPlanner struct {
	Frac float64
}

// Name implements CohortPlanner.
func (FixedPlanner) Name() string { return "fixed" }

// PlanInto implements CohortPlanner.
func (p FixedPlanner) PlanInto(dst []float64, e *Engine) error {
	if !(p.Frac > 0) || p.Frac > 1 {
		return fmt.Errorf("hier: fixed fraction %v outside (0,1]", p.Frac)
	}
	for r := range dst {
		dst[r] = p.Frac
	}
	return nil
}

// MaxFreqPlanner runs every device flat out — the energy-oblivious default
// the paper argues against, kept as the speed upper bound.
type MaxFreqPlanner struct{}

// Name implements CohortPlanner.
func (MaxFreqPlanner) Name() string { return "maxfreq" }

// PlanInto implements CohortPlanner.
func (MaxFreqPlanner) PlanInto(dst []float64, e *Engine) error {
	for r := range dst {
		dst[r] = 1
	}
	return nil
}

// HeuristicPlanner applies the barrier-unaware closed-form optimum of Tran
// et al. per region: each device's standalone cost w/δ + λ·α·w·δ² is
// minimized at δ* = (2λα)^{-1/3}, so the region's fraction is the mean of
// clamp(δ*_i, minFrac·δ_i^max, δ_i^max)/δ_i^max over its devices. λ and α
// are static, so the fractions are computed once at construction and the
// per-step plan is a copy — zero allocations on the round path.
type HeuristicPlanner struct {
	fracs []float64
}

// NewHeuristicPlanner precomputes the per-region fractions for the engine's
// fleet, topology and λ. minFrac floors the fraction in (0,1).
func NewHeuristicPlanner(e *Engine, minFrac float64) (*HeuristicPlanner, error) {
	if e == nil {
		return nil, fmt.Errorf("hier: nil engine")
	}
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("hier: min frequency fraction %v outside (0,1)", minFrac)
	}
	R := e.Top.Regions()
	fracs := make([]float64, R)
	for r := 0; r < R; r++ {
		lo, hi := e.Top.Region(r)
		var sum float64
		for i := lo; i < hi; i++ {
			var f float64
			if e.Cfg.Lambda > 0 {
				f = math.Pow(2*e.Cfg.Lambda*e.Fleet.Alpha[i], -1.0/3.0)
			} else {
				f = e.Fleet.MaxFreqHz[i] // time-only objective: run flat out
			}
			frac := f / e.Fleet.MaxFreqHz[i]
			if frac < minFrac {
				frac = minFrac
			}
			if frac > 1 {
				frac = 1
			}
			sum += frac
		}
		fracs[r] = sum / float64(hi-lo)
	}
	return &HeuristicPlanner{fracs: fracs}, nil
}

// Name implements CohortPlanner.
func (*HeuristicPlanner) Name() string { return "heuristic" }

// PlanInto implements CohortPlanner.
func (h *HeuristicPlanner) PlanInto(dst []float64, e *Engine) error {
	if len(dst) != len(h.fracs) {
		return fmt.Errorf("hier: heuristic plan for %d regions applied to %d", len(h.fracs), len(dst))
	}
	copy(dst, h.fracs)
	return nil
}

// FracPolicy serves region frequency fractions from a state vector — the
// seam between the engine and the DRL serving stack (sched.CohortDRL
// implements it; hier stays free of the rl/sched dependency).
type FracPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// FracsInto maps a region-level state (Regions·(History+1) values) to
	// one fraction per region, each in (0,1].
	FracsInto(dst []float64, state []float64) error
}

// StateConfig shapes the region-level observation the actor planner feeds
// its policy: for each region, the mean bandwidth history of a few probe
// devices over the last History+1 slots of SlotSec seconds, divided by
// BWScale — the paper's per-device state (§IV-B) lifted to the region.
type StateConfig struct {
	// SlotSec is the history slot length h in seconds.
	SlotSec float64
	// History is H: the state carries H+1 slot averages per region.
	History int
	// BWScale divides raw bytes/s into network units (default 1).
	BWScale float64
	// Probes is how many devices per region are sampled for the bandwidth
	// history (evenly strided across the region; default 4). Probing keeps
	// the observation O(R·Probes) instead of O(N) at N=1M.
	Probes int
}

// withDefaults fills zero fields.
func (c StateConfig) withDefaults() StateConfig {
	if c.BWScale == 0 {
		c.BWScale = 1
	}
	if c.Probes == 0 {
		c.Probes = 4
	}
	return c
}

// Validate checks the state shape.
func (c StateConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.SlotSec <= 0 || math.IsNaN(c.SlotSec) || math.IsInf(c.SlotSec, 0):
		return fmt.Errorf("hier: slot length %v must be positive and finite", c.SlotSec)
	case c.History < 0:
		return fmt.Errorf("hier: negative history length %d", c.History)
	case c.BWScale <= 0 || math.IsNaN(c.BWScale) || math.IsInf(c.BWScale, 0):
		return fmt.Errorf("hier: bandwidth scale %v must be positive and finite", c.BWScale)
	case c.Probes < 0:
		return fmt.Errorf("hier: negative probe count %d", c.Probes)
	}
	return nil
}

// Width returns the per-region state width H+1.
func (c StateConfig) Width() int { return c.History + 1 }

// RegionStateInto fills dst (length Regions·(History+1), grown if short)
// with the region-level observation at the engine's current clock: region
// r's row is the probe-mean bandwidth history, most recent slot first,
// divided by BWScale. scratch is the reusable HistoryInto buffer; both
// slices are returned so steady-state calls allocate nothing.
func (e *Engine) RegionStateInto(dst, scratch []float64, cfg StateConfig) ([]float64, []float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return dst, scratch, err
	}
	R := e.Top.Regions()
	width := cfg.Width()
	need := R * width
	if cap(dst) < need {
		dst = make([]float64, need)
	} else {
		dst = dst[:need]
	}
	for r := 0; r < R; r++ {
		lo, hi := e.Top.Region(r)
		size := hi - lo
		probes := cfg.Probes
		if probes > size {
			probes = size
		}
		row := dst[r*width : (r+1)*width]
		for j := range row {
			row[j] = 0
		}
		for p := 0; p < probes; p++ {
			i := lo + p*size/probes
			tr := e.Fleet.Pool[e.Fleet.TraceIdx[i]]
			scratch = tr.HistoryInto(scratch, e.clock+e.Fleet.Phase[i], cfg.SlotSec, cfg.History)
			for j, v := range scratch {
				row[j] += v
			}
		}
		inv := 1 / (float64(probes) * cfg.BWScale)
		for j := range row {
			row[j] *= inv
		}
	}
	return dst, scratch, nil
}

// ActorPlanner serves cohort fractions from a trained policy: it builds the
// region-level state and delegates to a FracPolicy (one inference pass
// prices every region). Reuses its state buffers across steps.
type ActorPlanner struct {
	Policy FracPolicy
	State  StateConfig

	state, scratch []float64
}

// NewActorPlanner validates the pairing.
func NewActorPlanner(p FracPolicy, cfg StateConfig) (*ActorPlanner, error) {
	if p == nil {
		return nil, fmt.Errorf("hier: nil policy")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ActorPlanner{Policy: p, State: cfg.withDefaults()}, nil
}

// Name implements CohortPlanner.
func (a *ActorPlanner) Name() string { return "actor-" + a.Policy.Name() }

// PlanInto implements CohortPlanner.
func (a *ActorPlanner) PlanInto(dst []float64, e *Engine) error {
	var err error
	a.state, a.scratch, err = e.RegionStateInto(a.state, a.scratch, a.State)
	if err != nil {
		return err
	}
	return a.Policy.FracsInto(dst, a.state)
}
