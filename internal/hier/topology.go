package hier

import "fmt"

// Topology partitions a fleet into regions, each served by one edge
// aggregator. Regions are contiguous index ranges — device order is the
// layout order of the fleet's SoA columns, so a region's round walks a
// dense slice of every parameter array (cache-friendly at N=1M).
type Topology struct {
	// offsets has one entry per region boundary: region r owns devices
	// [offsets[r], offsets[r+1]).
	offsets []int32
}

// EvenTopology splits n devices into `regions` contiguous regions whose
// sizes differ by at most one (the first n%regions regions get the extra
// device).
func EvenTopology(n, regions int) (Topology, error) {
	if n <= 0 {
		return Topology{}, fmt.Errorf("hier: %d devices", n)
	}
	if regions <= 0 || regions > n {
		return Topology{}, fmt.Errorf("hier: %d regions for %d devices", regions, n)
	}
	offsets := make([]int32, regions+1)
	base, extra := n/regions, n%regions
	pos := 0
	for r := 0; r < regions; r++ {
		offsets[r] = int32(pos)
		pos += base
		if r < extra {
			pos++
		}
	}
	offsets[regions] = int32(n)
	return Topology{offsets: offsets}, nil
}

// NewTopology builds a topology from explicit region boundaries: offsets
// must start at 0, end at the device count, and be strictly increasing
// (every region non-empty).
func NewTopology(offsets []int32) (Topology, error) {
	if len(offsets) < 2 {
		return Topology{}, fmt.Errorf("hier: topology needs at least one region")
	}
	if offsets[0] != 0 {
		return Topology{}, fmt.Errorf("hier: topology must start at device 0, got %d", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			return Topology{}, fmt.Errorf("hier: region %d is empty or inverted (%d..%d)", i-1, offsets[i-1], offsets[i])
		}
	}
	return Topology{offsets: append([]int32(nil), offsets...)}, nil
}

// Regions returns the number of regions.
func (t Topology) Regions() int { return len(t.offsets) - 1 }

// Region returns the device index range [lo, hi) of region r.
func (t Topology) Region(r int) (lo, hi int) {
	return int(t.offsets[r]), int(t.offsets[r+1])
}

// Size returns the number of devices in region r.
func (t Topology) Size(r int) int { return int(t.offsets[r+1] - t.offsets[r]) }

// N returns the total device count the topology covers.
func (t Topology) N() int { return int(t.offsets[len(t.offsets)-1]) }

// validate checks the topology against a fleet size.
func (t Topology) validate(n int) error {
	if len(t.offsets) < 2 {
		return fmt.Errorf("hier: topology not initialized (use EvenTopology or NewTopology)")
	}
	if t.N() != n {
		return fmt.Errorf("hier: topology covers %d devices, fleet has %d", t.N(), n)
	}
	return nil
}
