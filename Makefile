# Standard entry points for the fldrl reproduction. Everything is plain
# `go` underneath; the targets just pin the invocations CI and reviewers
# should use.

GO ?= go

.PHONY: all build test race vet bench bench-hot bench-compare bench-fleet bench-hier bench-train bench-constrained fuzz profile quick serve-smoke bench-serving clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the parallel rollout,
# kernel, and experiment pools must stay clean here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the figure and kernel benchmarks; -cpu 1,4 exposes the
# parallel kernels' scaling (results are bit-identical at every width).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -cpu 1,4 .

# Packages holding the hot-path benchmarks: trace engine + env step
# (results/BENCH_trace.json) and the dual-precision tensor kernels
# (results/BENCH_fleet.json).
BENCH_HOT_PKGS = ./internal/trace ./internal/env ./internal/tensor

# bench-hot runs the hot-path benchmarks at measurement length.
bench-hot:
	$(GO) test -run xxx -bench . -benchtime 200ms $(BENCH_HOT_PKGS)

# bench-compare snapshots the hot-path benchmarks into bench.new (rotating
# the previous snapshot to bench.old) and, when benchstat is installed,
# diffs the two — run once before a perf change and once after.
bench-compare:
	@if [ -f bench.new ]; then mv bench.new bench.old; fi
	$(GO) test -run xxx -bench . -benchtime 200ms -count 5 $(BENCH_HOT_PKGS) | tee bench.new
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f bench.old ]; then benchstat bench.old bench.new; \
		else echo "bench-compare: baseline recorded; rerun after your change to diff"; fi; \
	else \
		echo "bench-compare: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw output in bench.new"; \
	fi

# bench-fleet measures fleet serving (decisions/sec at N=1k and N=100k
# across the f32-fleet / f64-batched / f64-perdev backends) plus the
# float32 kernel micro-benches — the numbers tracked in
# results/BENCH_fleet.json. Snapshots into bench-fleet.new (rotating the
# previous run to bench-fleet.old) and diffs with benchstat when installed.
bench-fleet:
	@if [ -f bench-fleet.new ]; then mv bench-fleet.new bench-fleet.old; fi
	$(GO) test -run xxx -bench BenchmarkFleetInference -benchtime 1s . | tee bench-fleet.new
	$(GO) test -run xxx -bench . -benchtime 300ms ./internal/tensor | tee -a bench-fleet.new
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f bench-fleet.old ]; then benchstat bench-fleet.old bench-fleet.new; \
		else echo "bench-fleet: baseline recorded; rerun after your change to diff"; fi; \
	else \
		echo "bench-fleet: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw output in bench-fleet.new"; \
	fi

# bench-hier measures the hierarchical federation engine: flat barrier vs
# two-tier sync vs cohort/semi-async rounds at N=100k and N=1M (the numbers
# tracked in results/BENCH_hier.json). Snapshots into bench-hier.new
# (rotating the previous run to bench-hier.old) and diffs with benchstat
# when installed.
bench-hier:
	@if [ -f bench-hier.new ]; then mv bench-hier.new bench-hier.old; fi
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/hier | tee bench-hier.new
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f bench-hier.old ]; then benchstat bench-hier.old bench-hier.new; \
		else echo "bench-hier: baseline recorded; rerun after your change to diff"; fi; \
	else \
		echo "bench-hier: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw output in bench-hier.new"; \
	fi

# bench-train measures the data-parallel training engine: PPO/A2C updates
# at -cpu 1 (single-core kernel speed, the number tracked in
# results/BENCH_train.json) plus the sharded update at Workers>1 — results
# are bit-identical at every worker count, only wall-clock moves. Snapshots
# into bench-train.new (rotating the previous run to bench-train.old) and
# diffs with benchstat when installed.
bench-train:
	@if [ -f bench-train.new ]; then mv bench-train.new bench-train.old; fi
	$(GO) test -run xxx -bench 'BenchmarkPPOUpdate|BenchmarkA2CUpdate' -cpu 1 -count 5 -benchtime 20x . | tee bench-train.new
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f bench-train.old ]; then benchstat bench-train.old bench-train.new; \
		else echo "bench-train: baseline recorded; rerun after your change to diff"; fi; \
	else \
		echo "bench-train: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw output in bench-train.new"; \
	fi

# bench-constrained measures the Lagrangian constrained-PPO update against
# the plain PPO update on the same 256-sample paper-scale batch shape — the
# constrained-path overhead (fused cost-critic waves + multiplier step)
# tracked in results/BENCH_constrained.json. Results are bit-identical at
# every worker count (TestConstrainedPPOUpdateWorkerInvariance) and the
# steady state stays allocation-free (TestConstrainedPPOUpdateSteadyStateAllocs).
# Snapshots into bench-constrained.new (rotating the previous run to
# bench-constrained.old) and diffs with benchstat when installed.
bench-constrained:
	@if [ -f bench-constrained.new ]; then mv bench-constrained.new bench-constrained.old; fi
	$(GO) test -run xxx -bench BenchmarkConstrainedPPOUpdate -cpu 1 -count 5 -benchtime 20x ./internal/rl | tee bench-constrained.new
	$(GO) test -run xxx -bench 'BenchmarkPPOUpdate$$' -cpu 1 -count 5 -benchtime 20x . | tee -a bench-constrained.new
	@if command -v benchstat >/dev/null 2>&1; then \
		if [ -f bench-constrained.old ]; then benchstat bench-constrained.old bench-constrained.new; \
		else echo "bench-constrained: baseline recorded; rerun after your change to diff"; fi; \
	else \
		echo "bench-constrained: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw output in bench-constrained.new"; \
	fi

# fuzz exercises the parse/sanitize fuzz targets (go's native fuzzer runs
# one target per invocation). Raise FUZZTIME for a deeper run.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -run xxx -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run xxx -fuzz FuzzSanitize -fuzztime $(FUZZTIME) ./internal/guard
	$(GO) test -run xxx -fuzz FuzzParseLine -fuzztime $(FUZZTIME) ./internal/guard
	$(GO) test -run xxx -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME) ./internal/server

# serve-smoke boots flserver, fires an flload burst (with chaos requests
# mixed in), bounds the client p99, and checks the daemon drains cleanly
# with zero dropped in-flight requests. scripts/serve_smoke.sh owns the
# process wrangling.
serve-smoke: build
	./scripts/serve_smoke.sh

# bench-serving runs the measurement-length load (the ≥1M decisions/min
# number tracked in results/BENCH_serving.json).
bench-serving: build
	./scripts/serve_smoke.sh -bench

# profile runs a short profiled training workload; inspect with
#   go tool pprof cpu.pprof / mem.pprof   and   go tool trace exec.trace
profile: build
	$(GO) run ./cmd/fltrain -episodes 25 -o /tmp/fldrl-profile-agent.gob \
		-cpuprofile cpu.pprof -memprofile mem.pprof -trace exec.trace

# quick regenerates every table at smoke-test sizes.
quick:
	$(GO) run ./cmd/flexperiments -quick

clean:
	$(GO) clean ./...
