# Standard entry points for the fldrl reproduction. Everything is plain
# `go` underneath; the targets just pin the invocations CI and reviewers
# should use.

GO ?= go

.PHONY: all build test race vet bench quick clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the parallel rollout,
# kernel, and experiment pools must stay clean here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the figure and kernel benchmarks; -cpu 1,4 exposes the
# parallel kernels' scaling (results are bit-identical at every width).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -cpu 1,4 .

# quick regenerates every table at smoke-test sizes.
quick:
	$(GO) run ./cmd/flexperiments -quick

clean:
	$(GO) clean ./...
