// Package repro reproduces "Experience-Driven Computational Resource
// Allocation of Federated Learning by Deep Reinforcement Learning"
// (Y. Zhan, P. Li, S. Guo — IPDPS 2020) as a pure-stdlib Go library.
//
// Federated learning synchronizes every mobile device at each iteration:
// the round ends only when the slowest device has trained and uploaded its
// local model, so faster devices idle. The paper lowers those devices'
// CPU-cycle frequencies just enough to finish in time, cutting the δ²
// energy term without slowing the round, and learns the control policy
// with PPO because future uplink bandwidth is unknown.
//
// The implementation is layered bottom-up:
//
//   - internal/tensor, internal/nn, internal/rl — float64 linear algebra,
//     MLPs with manual backprop, and PPO-clip with GAE and Gaussian
//     policies (joint and weight-shared per-device actors).
//   - internal/trace, internal/bandwidth — piecewise-constant bandwidth
//     traces with exact upload-window integration (eq. 3), and seeded
//     regime-switching generators calibrated to the paper's 4G/HSDPA
//     datasets.
//   - internal/device, internal/fl — the §III system model: eqs. (1)–(6),
//     the synchronous barrier (5) and the wall-clock recursion (11).
//   - internal/fedavg — real FedAvg training (eqs. 7–8) gating on the
//     quality constraint (10).
//   - internal/env, internal/sched, internal/core — the MDP of §IV, the
//     baseline schedulers of §V (Heuristic [3], Static [4], plus
//     MaxFreq/Random/Oracle references), and Algorithm 1's offline
//     trainer with agent persistence.
//   - internal/experiments — one runner per paper figure (2, 6, 7, 8) and
//     the design ablations.
//
// Entry points: cmd/fltrain (Algorithm 1), cmd/flsim (online reasoning),
// cmd/tracegen (Fig. 2 traces), cmd/flexperiments (everything), and the
// runnable walkthroughs under examples/.
package repro
