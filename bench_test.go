package repro

// One benchmark per paper table/figure, plus kernel micro-benchmarks. The
// figure benches exercise the exact experiment code paths at reduced sizes
// so `go test -bench=.` completes in minutes; the full-size regeneration is
// `go run ./cmd/flexperiments -out results`. Shapes to check against the
// paper are recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// BenchmarkFig2TraceDynamics regenerates the Fig. 2 bandwidth traces
// (three 4G walking traces and one HSDPA bus trace over 400 s).
func BenchmarkFig2TraceDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(400, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Walking) != 3 {
			b.Fatal("wrong trace count")
		}
	}
}

// BenchmarkFig6Convergence runs the offline DRL training loop of Fig. 6
// (Algorithm 1) at a reduced episode budget on the 3-device testbed.
func BenchmarkFig6Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.TestbedScenario(1), experiments.TrainOptions{
			Episodes: 25, Hidden: []int{32, 32}, Arch: core.ArchJoint, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AvgCost) != 25 {
			b.Fatal("wrong episode count")
		}
	}
}

// BenchmarkFig7Performance runs the testbed comparison of Fig. 7(a)–(f):
// DRL vs Heuristic [3] vs Static [4] with pooled CDFs.
func BenchmarkFig7Performance(b *testing.B) {
	sc := experiments.TestbedScenario(1)
	res6, err := experiments.Fig6(sc, experiments.TrainOptions{
		Episodes: 25, Hidden: []int{32, 32}, Arch: core.ArchJoint, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(sc, res6.Agent, experiments.CompareOptions{
			Iterations: 50, Runs: 2, StaticSamples: 2, IncludeExtras: true, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.Summary("drl"); !ok {
			b.Fatal("missing drl row")
		}
	}
}

// BenchmarkFig8Scale runs the scalability simulation of Fig. 8 (reduced
// from 50 to 16 devices) with the weight-shared actor.
func BenchmarkFig8Scale(b *testing.B) {
	sc := experiments.SimulationScenario(16, 1)
	sys, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	agent, _, err := experiments.TrainAgent(sys, experiments.TrainOptions{
		Episodes: 15, Hidden: []int{16, 16}, Arch: core.ArchShared, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(sc, agent, experiments.CompareOptions{
			Iterations: 40, Runs: 1, StaticSamples: 2, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FirstRunCosts) == 0 {
			b.Fatal("no cost series")
		}
	}
}

// BenchmarkAblationStaticSamples sweeps the Static baseline's estimate
// quality (DESIGN.md ablation index).
func BenchmarkAblationStaticSamples(b *testing.B) {
	sc := experiments.TestbedScenario(1)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStaticSamples(sc, []int{1, 3, 10}, 2, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBarrierAwareness measures the value of barrier-aware
// planning alone (no learning), the paper's structural insight.
func BenchmarkAblationBarrierAwareness(b *testing.B) {
	sc := experiments.TestbedScenario(1)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBarrierAwareness(sc, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- kernel micro-benchmarks ------------------------------------------

// BenchmarkSimIteration measures one synchronous FL iteration (trace
// integration + barrier) on the 50-device system — the simulator's hot loop.
func BenchmarkSimIteration(b *testing.B) {
	sys, err := experiments.SimulationScenario(50, 1).Build()
	if err != nil {
		b.Fatal(err)
	}
	freqs := make([]float64, sys.N())
	for i, d := range sys.Devices {
		freqs[i] = 0.7 * d.MaxFreqHz
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunIteration(0, float64(i%1000), freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPPOBatch builds the paper-scale PPO agent (18-dim state, 3 actions,
// 64×64 joint actor) plus a 256-sample batch for the update benchmarks.
func benchPPOBatch(b *testing.B, workers int) (*rl.PPO, *rl.Batch) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	stateDim, actionDim := 18, 3
	actor := rl.NewGaussianPolicy(stateDim, actionDim, []int{64, 64}, 0.4, rng)
	critic := nn.NewMLP([]int{stateDim, 64, 64, 1}, nn.Tanh, nn.Identity, rng)
	cfg := rl.DefaultPPOConfig()
	cfg.TargetKL = 0
	cfg.Workers = workers
	agent, err := rl.NewPPO(cfg, actor, critic, rng)
	if err != nil {
		b.Fatal(err)
	}
	buf := rl.NewBuffer(256)
	for !buf.Full() {
		s := tensor.NewVector(stateDim)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		buf.Add(rl.Transition{State: s, Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: agent.Value(s), Done: rng.Intn(40) == 0})
	}
	return agent, rl.MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda)
}

// BenchmarkPPOUpdate measures one PPO update over a 256-sample buffer with
// the paper-scale joint actor (single-threaded engine — the
// results/BENCH_train.json number).
func BenchmarkPPOUpdate(b *testing.B) {
	agent, batch := benchPPOBatch(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPOUpdateParallel is the same update with four engine workers.
// The result bits are identical to BenchmarkPPOUpdate at any -cpu value —
// only wall-clock time may move (see DESIGN.md §15).
func BenchmarkPPOUpdateParallel(b *testing.B) {
	agent, batch := benchPPOBatch(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2CUpdate measures one A2C update over the same 256-sample batch
// shape on the single-threaded engine path.
func BenchmarkA2CUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stateDim, actionDim := 18, 3
	actor := rl.NewGaussianPolicy(stateDim, actionDim, []int{64, 64}, 0.4, rng)
	critic := nn.NewMLP([]int{stateDim, 64, 64, 1}, nn.Tanh, nn.Identity, rng)
	agent, err := rl.NewA2C(rl.DefaultA2CConfig(), actor, critic)
	if err != nil {
		b.Fatal(err)
	}
	buf := rl.NewBuffer(256)
	for !buf.Full() {
		s := tensor.NewVector(stateDim)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		buf.Add(rl.Transition{State: s, Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: critic.Forward(s)[0], Done: rng.Intn(40) == 0})
	}
	batch := rl.MakeBatch(buf, 0, 0.99, 0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyForward measures one deterministic action decision at
// N=50 with the shared actor — the per-iteration online-reasoning cost.
func BenchmarkPolicyForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := rl.NewSharedGaussianPolicy(50, 6, []int{32, 32}, 0.4, rng)
	s := tensor.NewVector(p.StateDim())
	for i := range s {
		s[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Mean(s)
	}
}

// BenchmarkMatMul measures the batched matmul kernel at the PPO-minibatch
// shape (256 samples through a 64-unit layer). Run with -cpu 1,4 to see the
// row-parallel scaling; the result is bit-identical at every width.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.NewMatrix(256, 64)
	w := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewMatrix(256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransB(dst, a, w)
	}
}

// BenchmarkMLPForwardBatched pushes a 256-sample minibatch through the
// paper-scale actor in one matrix pass per layer — the batched counterpart
// of BenchmarkPolicyForward's single-sample path.
func BenchmarkMLPForwardBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP([]int{18, 64, 64, 3}, nn.Tanh, nn.Identity, rng)
	X := tensor.NewMatrix(256, 18)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(X)
	}
}

// BenchmarkParallelEpisodes trains a short run with wave-parallel episode
// collection, one rollout worker per available CPU. Run with -cpu 1,4 to
// compare widths; the trained agent is identical at every width.
func BenchmarkParallelEpisodes(b *testing.B) {
	sc := experiments.TestbedScenario(1)
	sys, err := sc.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.TrainOptions{
		Episodes: 8, Hidden: []int{32, 32}, Arch: core.ArchJoint, Seed: 1,
		Workers: runtime.GOMAXPROCS(0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TrainAgent(sys, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFrequencies measures the baselines' 1-D planner at N=50.
func BenchmarkPlanFrequencies(b *testing.B) {
	sys, err := experiments.SimulationScenario(50, 1).Build()
	if err != nil {
		b.Fatal(err)
	}
	bw := make([]float64, sys.N())
	for i := range bw {
		bw[i] = 1e6 + float64(i)*1e5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PlanFrequencies(sys, bw, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedAvgRound measures one real FedAvg round (local SGD on every
// client + weighted aggregation) on the loss-constraint substrate.
func BenchmarkFedAvgRound(b *testing.B) {
	cfg := fedavg.DefaultSyntheticConfig(10)
	clients, _, err := fedavg.GenerateSynthetic(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	fed, err := fedavg.NewFederation(clients, fedavg.NewLogisticModel(cfg.Dim, 1e-4), 1, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fed.Round()
	}
}

// BenchmarkUploadSolver measures the continuous-time upload-completion
// solver (eq. 3) on a long volatile trace.
func BenchmarkUploadSolver(b *testing.B) {
	sys, err := experiments.TestbedScenario(1).Build()
	if err != nil {
		b.Fatal(err)
	}
	tr := sys.Traces[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.UploadFinish(float64(i%3000), 25e6); err != nil {
			b.Fatal(err)
		}
	}
}
